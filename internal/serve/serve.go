package serve

// The continuous-batching scheduler: requests from an open-loop trace
// join a running batch at kernel-chain boundaries, every admitted
// request's chain rides its own CUDA stream through the detailed timing
// engine, and completed requests leave the batch while later arrivals
// take their place — iteration-level scheduling over the PR 3 stream
// chains and the PR 4 O(active) drain.
//
// Determinism contract (the serving extension of the -j1 vs -jN
// byte-identity contract): every scheduling decision — admission,
// batch composition, stream assignment, completion — happens here on
// the coordinator goroutine, in arrival order, keyed only off the
// engine's deterministic cycle counts. Worker count can therefore never
// change a serving run's Stats, per-request latencies or replay
// counters, which TestServeWorkerDeterminism pins.

import (
	"fmt"
	"math/rand"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/torch"
)

// Config sizes a serving run.
type Config struct {
	// Model is the served transformer; a zero value selects DefaultModel.
	Model torch.TransformerConfig
	// Engine is the simulated GPU; a zero Name selects timing.GTX1050().
	Engine timing.Config
	// Workers is the engine's host worker count (0 = 1; negative = all
	// CPUs). Results are byte-identical for any value.
	Workers int
	// MaxBatch caps concurrent requests in the batch. 0 derives the cap
	// from the engine's occupancy headroom (see admissionCap).
	MaxBatch int
	// ModelSeed seeds the model weights (0 selects 7, the seed the other
	// transformer drivers use).
	ModelSeed int64
	// Replay enables hybrid replay mode on the engine: repeated kernel
	// chains retire from memoized timing, with functional effects still
	// exact. ReplayResampleEvery is timing.Config.ReplayResampleEvery.
	Replay              bool
	ReplayResampleEvery int
	// KeepOutputs retains each request's final-step output activations
	// in Result.Outputs (decode traces: its generated tokens in
	// Result.Tokens instead). The replay-equivalence tests compare them.
	KeepOutputs bool
	// KVBudgetBytes caps the modelled KV-cache bytes resident across the
	// batch on decode traces: a request is only admitted while the sum of
	// per-session cache footprints (torch.KVCacheBytes of the model) stays
	// within the budget, and retirement frees its share. 0 selects
	// DefaultKVBudgetBytes. Ignored on v1 traces.
	KVBudgetBytes int
}

// DefaultKVBudgetBytes is the decode admission budget when
// Config.KVBudgetBytes is zero — 256 KiB, 32 DefaultModel sessions.
const DefaultKVBudgetBytes = 256 << 10

// DefaultModel is the served encoder: the same shape the transformer
// workload family uses, so serve runs exercise every kernel family.
func DefaultModel() torch.TransformerConfig {
	return torch.TransformerConfig{
		Layers: 2, Heads: 4, DModel: 32, FF: 64, Vocab: 61, MaxSeq: 16,
	}
}

// RequestStats is one request's serving outcome. All times are absolute
// cycles on the serving clock (cycle 0 = serving start).
type RequestStats struct {
	ID         int
	SeqLen     int
	Steps      int
	Arrival    uint64
	Admitted   uint64 // chain boundary the request joined the batch at
	FirstToken uint64 // end of its first kernel-chain iteration
	Completed  uint64 // end of its last kernel-chain iteration
}

// Latency returns arrival-to-completion cycles.
func (r RequestStats) Latency() uint64 { return r.Completed - r.Arrival }

// TTFT returns arrival-to-first-token cycles (end of the first chain
// iteration that included the request).
func (r RequestStats) TTFT() uint64 { return r.FirstToken - r.Arrival }

// LatencyBucket is one time window of a serving run's latency series:
// completions falling in (start, EndCycle] with their nearest-rank
// percentiles — the rows behind serve_latency.csv.
type LatencyBucket struct {
	EndCycle  uint64
	Completed int
	P50       float64
	P99       float64
	P999      float64
}

// Result summarises a serving run.
type Result struct {
	Trace       Trace
	Requests    []RequestStats // completion order
	Outputs     [][]float32    // by request ID, final step (KeepOutputs)
	TotalCycles uint64         // serving-clock end (busy + idle)
	BusyCycles  uint64         // cycles spent inside chain iterations
	Iterations  int            // kernel-chain boundaries crossed
	BatchCap    int            // admission cap in effect
	PeakBatch   int            // largest concurrent batch observed
	Log         []cudart.KernelStats
	Stats       timing.Stats // engine counters, replay counters included

	// Decode-trace fields (zero on v1 traces): the KV admission budget in
	// effect, the largest resident KV footprint observed, and — with
	// KeepOutputs — each request's generated token ids by request ID.
	Decode        bool
	KVBudgetBytes int
	PeakKVBytes   int
	Tokens        [][]int32
}

// Latencies returns per-request latency samples in completion order.
func (r *Result) Latencies() []float64 {
	out := make([]float64, len(r.Requests))
	for i, q := range r.Requests {
		out[i] = float64(q.Latency())
	}
	return out
}

// TTFTs returns per-request time-to-first-token samples in completion
// order.
func (r *Result) TTFTs() []float64 {
	out := make([]float64, len(r.Requests))
	for i, q := range r.Requests {
		out[i] = float64(q.TTFT())
	}
	return out
}

// Goodput returns completed requests per million cycles.
func (r *Result) Goodput() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(len(r.Requests)) / float64(r.TotalCycles) * 1e6
}

// Utilization returns the fraction of serving time spent inside chain
// iterations (the rest is idle waiting for arrivals).
func (r *Result) Utilization() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.BusyCycles) / float64(r.TotalCycles)
}

// LatencyOverTime splits the serving span into n windows and returns the
// completion-latency percentiles of each — latency percentiles over
// time, the aerial serving view. Windows with no completions carry zero
// percentiles and Completed == 0.
func (r *Result) LatencyOverTime(n int) []LatencyBucket {
	if n < 1 || r.TotalCycles == 0 {
		return nil
	}
	width := (r.TotalCycles + uint64(n) - 1) / uint64(n)
	if width == 0 {
		width = 1
	}
	out := make([]LatencyBucket, n)
	samples := make([][]float64, n)
	for _, q := range r.Requests {
		b := int(q.Completed / width)
		if b >= n {
			b = n - 1
		}
		samples[b] = append(samples[b], float64(q.Latency()))
	}
	for i := range out {
		out[i].EndCycle = uint64(i+1) * width
		out[i].Completed = len(samples[i])
		if len(samples[i]) > 0 {
			out[i].P50 = stats.Percentile(samples[i], 50)
			out[i].P99 = stats.Percentile(samples[i], 99)
			out[i].P999 = stats.Percentile(samples[i], 99.9)
		}
	}
	return out
}

// admissionCap derives how many requests may share the batch from the
// engine's occupancy headroom: each resident sequence's widest kernel
// (the per-head attention GEMM or the FF projection, 8 warps per 16x16
// tile CTA) must fit in the machine's warp contexts alongside the other
// sequences'. Beyond that point extra sequences only deepen the
// dispatcher queue without overlapping, so admitting them would grow
// batch latency for no goodput — the serving analog of KV-cache
// admission control. Always at least 1.
func admissionCap(cfg *timing.Config, m torch.TransformerConfig, maxSeq int) int {
	const tile, warpsPerCTA = 16, 8
	tiles := func(n int) int { return (n + tile - 1) / tile }
	attn := m.Heads * tiles(maxSeq) * tiles(maxSeq) * warpsPerCTA
	wide := m.FF
	if m.DModel > wide {
		wide = m.DModel
	}
	proj := tiles(maxSeq) * tiles(wide) * warpsPerCTA
	peak := attn
	if proj > peak {
		peak = proj
	}
	n := cfg.NumSMs * cfg.MaxWarpsPerSM / peak
	if n < 1 {
		n = 1
	}
	return n
}

// tokensFor builds request id's deterministic token sequence.
func tokensFor(id, seqLen, vocab int) []int32 {
	ids := make([]int32, seqLen)
	for j := range ids {
		ids[j] = int32((id*13 + j*5) % vocab)
	}
	return ids
}

// activeReq is one request resident in the continuous batch.
type activeReq struct {
	req       Request
	stats     RequestStats
	stepsLeft int
	admitted  bool // false until its first chain iteration completes
	// session is the request's KV-cache decode state (decode traces
	// only). It persists across chain iterations — its allocations are
	// excluded from the per-boundary transient frees — and is released
	// at retirement, returning its bytes to the KV admission budget.
	session *torch.DecodeSession
}

// Run simulates serving the trace to completion and returns the
// per-request latency outcomes plus the engine-level statistics.
func Run(cfg Config, tr Trace) (*Result, error) {
	if err := tr.validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model.Layers == 0 {
		model = DefaultModel()
	}
	engCfg := cfg.Engine
	if engCfg.Name == "" {
		engCfg = timing.GTX1050()
	}
	engCfg.ReplayEnabled = cfg.Replay
	engCfg.ReplayResampleEvery = cfg.ReplayResampleEvery
	decode := tr.decodeMode()
	for _, r := range tr.Requests {
		if r.SeqLen > model.MaxSeq {
			return nil, fmt.Errorf("serve: request %d seq_len %d exceeds the model's MaxSeq %d", r.ID, r.SeqLen, model.MaxSeq)
		}
		if decode && r.Prefill+r.Decode-1 > model.MaxSeq {
			return nil, fmt.Errorf("serve: request %d prefill %d + decode %d exceeds the model's MaxSeq %d", r.ID, r.Prefill, r.Decode, model.MaxSeq)
		}
	}
	seed := cfg.ModelSeed
	if seed == 0 {
		seed = 7
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}

	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	eng, err := timing.New(engCfg, timing.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	var (
		enc *torch.TransformerEncoder
		dec *torch.TransformerDecoder
	)
	if decode {
		dec, err = torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(seed)), model)
	} else {
		enc, err = torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(seed)), model)
	}
	if err != nil {
		return nil, err
	}

	kvBytes := torch.KVCacheBytes(model)
	kvBudget := cfg.KVBudgetBytes
	if kvBudget <= 0 {
		kvBudget = DefaultKVBudgetBytes
	}
	if decode && kvBytes > kvBudget {
		return nil, fmt.Errorf("serve: KV budget %d bytes cannot hold even one session (%d bytes per request)", kvBudget, kvBytes)
	}

	// Everything live now is model state (weights, tables) that persists
	// across iterations; allocations made past this point are
	// iteration-transient and freed at each chain boundary, so the
	// first-fit allocator re-issues identical addresses for identical
	// batch compositions — the replay cache's hit condition, and a bound
	// on the simulated memory a long trace touches.
	baseline := map[uint64]bool{}
	for _, a := range dev.Ctx.Alloc.LiveAllocations() {
		baseline[a] = true
	}

	batchCap := cfg.MaxBatch
	if batchCap <= 0 {
		batchCap = admissionCap(&engCfg, model, model.MaxSeq)
	}

	res := &Result{Trace: tr, BatchCap: batchCap, Decode: decode}
	if decode {
		res.KVBudgetBytes = kvBudget
	}
	if cfg.KeepOutputs {
		if decode {
			res.Tokens = make([][]int32, len(tr.Requests))
		} else {
			res.Outputs = make([][]float32, len(tr.Requests))
		}
	}

	var (
		now     uint64 // serving clock; 0 = serving start
		active  []*activeReq
		nextArr int // cursor into tr.Requests
		kvUsed  int // resident KV-cache bytes (decode traces)
	)
	for len(active) > 0 || nextArr < len(tr.Requests) {
		// Idle fast-forward: an empty batch waits for the next arrival.
		// (An empty batch holds no KV bytes, so the budget never blocks
		// the head request here — one session always fits, checked above.)
		if len(active) == 0 && tr.Requests[nextArr].Arrival > now {
			now = tr.Requests[nextArr].Arrival
		}
		// Admission, on the coordinator, in arrival order, gated by the
		// occupancy headroom cap and — on decode traces — the KV-cache
		// byte budget. Never out of order: a KV-blocked head request also
		// blocks every later arrival, so a request can only be overtaken
		// by completions, not by later arrivals.
		for nextArr < len(tr.Requests) && len(active) < batchCap &&
			tr.Requests[nextArr].Arrival <= now &&
			(!decode || kvUsed+kvBytes <= kvBudget) {
			r := tr.Requests[nextArr]
			nextArr++
			a := &activeReq{
				req:       r,
				stepsLeft: r.Steps,
				stats: RequestStats{
					ID: r.ID, SeqLen: r.SeqLen, Steps: r.Steps,
					Arrival: r.Arrival, Admitted: now,
				},
			}
			if decode {
				// The session (KV caches + id buffer) is allocated at the
				// chain boundary — allocator state here is baseline plus
				// the resident sessions, so identical batch compositions
				// see identical addresses. Its allocations persist until
				// retirement.
				s, err := dec.NewSession(tokensFor(r.ID, r.Prefill, model.Vocab))
				if err != nil {
					return nil, err
				}
				a.session = s
				for _, addr := range s.Allocations() {
					baseline[addr] = true
				}
				kvUsed += kvBytes
				if kvUsed > res.PeakKVBytes {
					res.PeakKVBytes = kvUsed
				}
			}
			active = append(active, a)
		}
		if len(active) > res.PeakBatch {
			res.PeakBatch = len(active)
		}

		// One continuous-batching iteration: every resident request's
		// kernel chain on its own stream, drained at the chain boundary.
		// Decode traces issue one step per request — the prompt prefill
		// on its first iteration, a single-token decode step after.
		iterStart := eng.Cycle()
		var outs [][]float32
		if decode {
			var streams []cudart.Stream
			for _, a := range active {
				st := dev.Ctx.StreamCreate()
				streams = append(streams, st)
				dev.H.SetStream(st)
				var err error
				if a.session.Len == 0 {
					err = dec.PrefillStep(a.session)
				} else {
					err = dec.DecodeStep(a.session)
				}
				if err != nil {
					dev.H.SetStream(cudart.DefaultStream)
					return nil, err
				}
			}
			dev.H.SetStream(cudart.DefaultStream)
			if err := dev.Ctx.DeviceSynchronize(); err != nil {
				return nil, err
			}
			for _, st := range streams {
				dev.Ctx.StreamDestroy(st)
			}
		} else {
			batch := make([][]int32, len(active))
			for i, a := range active {
				batch[i] = tokensFor(a.req.ID, a.req.SeqLen, model.Vocab)
			}
			var err error
			outs, err = enc.ForwardBatch(batch, true)
			if err != nil {
				return nil, err
			}
		}
		iterCycles := eng.Cycle() - iterStart
		now += iterCycles
		res.BusyCycles += iterCycles
		res.Iterations++

		// Retire finished requests (in batch order = admission order) and
		// compact the batch; survivors keep their slots. Retiring a decode
		// request downloads its tokens (the boundary drain above makes
		// that safe), frees its session and returns its KV bytes.
		keep := active[:0]
		for i, a := range active {
			if !a.admitted {
				a.admitted = true
				a.stats.FirstToken = now
			}
			a.stepsLeft--
			if a.stepsLeft > 0 {
				keep = append(keep, a)
				continue
			}
			a.stats.Completed = now
			res.Requests = append(res.Requests, a.stats)
			if decode {
				if cfg.KeepOutputs {
					res.Tokens[a.req.ID] = a.session.Tokens()
				}
				for _, addr := range a.session.Allocations() {
					delete(baseline, addr)
				}
				a.session.Free()
				kvUsed -= kvBytes
			} else if cfg.KeepOutputs {
				res.Outputs[a.req.ID] = outs[i]
			}
		}
		for i := len(keep); i < len(active); i++ {
			active[i] = nil
		}
		active = keep

		// Free the iteration's transient allocations (id uploads,
		// activations); outputs are already on the host and resident
		// sessions sit in the persist set.
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			if !baseline[a] {
				if err := dev.Ctx.Free(a); err != nil {
					return nil, err
				}
			}
		}
	}
	res.TotalCycles = now
	res.Log = append([]cudart.KernelStats(nil), dev.Ctx.KernelStatsLog()...)
	res.Stats = *eng.Stats()
	return res, nil
}
