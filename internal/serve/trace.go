// Package serve is the inference-serving scenario layer: an open-loop
// request stream (seeded Poisson, bursty on/off, or a replayable trace
// file) feeding transformer requests into a continuous-batching
// scheduler that coalesces them onto CUDA streams in the detailed timing
// model. The paper profiles ML workloads as closed batches; this package
// simulates the serving regime — requests keep arriving whether or not
// the simulated GPU keeps up — and reports the quantities serving
// systems are judged by: p50/p99/p99.9 latency, time-to-first-token and
// goodput versus offered load.
package serve

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Request is one inference request of an arrival trace: it arrives at an
// absolute cycle on the serving clock (open loop — arrival times never
// depend on service progress), carries SeqLen tokens, and needs Steps
// kernel-chain iterations of the model (1 = a single forward pass; >1
// models prefill + decode-style repeated chains, the granularity at
// which continuous batching lets requests join and leave the batch).
type Request struct {
	ID      int
	Arrival uint64 // cycles since serving start
	SeqLen  int
	Steps   int
	// Prefill/Decode are the v2 trace fields for KV-cached autoregressive
	// serving: the request prefills Prefill prompt tokens, then greedy-
	// decodes Decode tokens (one per chain iteration, so Steps == Decode
	// and SeqLen == Prefill on a decode request). Both zero on v1 traces.
	Prefill int
	Decode  int
}

// Trace is an ordered open-loop arrival stream.
type Trace struct {
	Requests []Request
}

// OfferedLoad returns the trace's offered load in requests per million
// cycles (arrival count over the arrival span). 0 for traces with fewer
// than two requests or a zero span.
func (t Trace) OfferedLoad() float64 {
	n := len(t.Requests)
	if n < 2 {
		return 0
	}
	span := t.Requests[n-1].Arrival - t.Requests[0].Arrival
	if span == 0 {
		return 0
	}
	return float64(n-1) / float64(span) * 1e6
}

// validate checks the structural invariants every consumer assumes:
// arrivals sorted (open-loop generators emit in time order; the parser
// rejects violations), positive SeqLen/Steps, and — when any request
// carries decode fields — a uniform decode trace (mixed v1/v2 requests
// would make the scheduler's mode ambiguous) with consistent
// SeqLen/Steps mirrors.
func (t Trace) validate() error {
	decode := t.decodeMode()
	var prev uint64
	for i, r := range t.Requests {
		if r.SeqLen < 1 {
			return fmt.Errorf("serve: request %d has seq_len %d (must be >= 1)", i, r.SeqLen)
		}
		if r.Steps < 1 {
			return fmt.Errorf("serve: request %d has steps %d (must be >= 1)", i, r.Steps)
		}
		if decode {
			if r.Prefill < 1 || r.Decode < 1 {
				return fmt.Errorf("serve: request %d has prefill %d / decode %d in a decode trace (both must be >= 1; mixing v1 and v2 requests is not allowed)", i, r.Prefill, r.Decode)
			}
			if r.SeqLen != r.Prefill || r.Steps != r.Decode {
				return fmt.Errorf("serve: request %d has seq_len %d / steps %d inconsistent with prefill %d / decode %d", i, r.SeqLen, r.Steps, r.Prefill, r.Decode)
			}
		} else if r.Prefill != 0 || r.Decode != 0 {
			return fmt.Errorf("serve: request %d has prefill %d / decode %d in a v1 trace (mixing v1 and v2 requests is not allowed)", i, r.Prefill, r.Decode)
		}
		if r.Arrival < prev {
			return fmt.Errorf("serve: request %d arrives at cycle %d, before request %d at %d (out of order)", i, r.Arrival, i-1, prev)
		}
		prev = r.Arrival
	}
	return nil
}

// decodeMode reports whether the trace is a KV-cached decode trace (v2):
// true iff any request carries decode fields. validate enforces that the
// answer is uniform across the trace.
func (t Trace) decodeMode() bool {
	for _, r := range t.Requests {
		if r.Decode > 0 {
			return true
		}
	}
	return false
}

// WithDecode stamps every request of the trace as a KV-cached decode
// request: prefill prompt tokens, then decode generated tokens (one per
// chain iteration). SeqLen/Steps are mirrored so v1-shaped consumers
// (offered load, admission bookkeeping) keep working.
func (t Trace) WithDecode(prefill, decode int) Trace {
	out := Trace{Requests: append([]Request(nil), t.Requests...)}
	for i := range out.Requests {
		out.Requests[i].SeqLen = prefill
		out.Requests[i].Steps = decode
		out.Requests[i].Prefill = prefill
		out.Requests[i].Decode = decode
	}
	return out
}

// Poisson generates n arrivals as a seeded Poisson process with `rate`
// requests per million cycles; every request carries seqLen tokens and
// steps chain iterations. The same seed always yields the same trace.
func Poisson(seed int64, rate float64, n, seqLen, steps int) Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := Trace{Requests: make([]Request, 0, n)}
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.ExpFloat64() / rate * 1e6
		tr.Requests = append(tr.Requests, Request{
			ID: i, Arrival: uint64(now), SeqLen: seqLen, Steps: steps,
		})
	}
	return tr
}

// Bursty generates n arrivals as a seeded on/off process: bursts of
// burstLen requests arriving as a Poisson stream at burstRate requests
// per million cycles, separated by exponentially distributed silent gaps
// with mean gapMean cycles — the diurnal/bursty shape open-loop serving
// traces show, compressed to simulation scale.
func Bursty(seed int64, burstRate float64, burstLen int, gapMean float64, n, seqLen, steps int) Trace {
	if burstLen < 1 {
		burstLen = 1
	}
	rng := rand.New(rand.NewSource(seed))
	tr := Trace{Requests: make([]Request, 0, n)}
	now := 0.0
	for i := 0; i < n; i++ {
		if i > 0 && i%burstLen == 0 {
			now += rng.ExpFloat64() * gapMean
		}
		now += rng.ExpFloat64() / burstRate * 1e6
		tr.Requests = append(tr.Requests, Request{
			ID: i, Arrival: uint64(now), SeqLen: seqLen, Steps: steps,
		})
	}
	return tr
}

// Merge interleaves traces by arrival time (stable: on ties the earlier
// argument wins) and renumbers request IDs in the merged order. Used to
// compose mixed scenarios, e.g. a Poisson baseline with bursts on top.
func Merge(traces ...Trace) Trace {
	var out Trace
	for _, t := range traces {
		out.Requests = append(out.Requests, t.Requests...)
	}
	sort.SliceStable(out.Requests, func(i, j int) bool {
		return out.Requests[i].Arrival < out.Requests[j].Arrival
	})
	for i := range out.Requests {
		out.Requests[i].ID = i
	}
	return out
}

// traceHeader / traceHeaderV2 are the version header lines of the
// replayable trace file format. v1 records are `arrival_cycles seq_len
// steps`; v2 records are `arrival_cycles prefill decode` and require the
// v2 header before the first record.
const (
	traceHeader   = "# gpgpusim-serve-trace v1"
	traceHeaderV2 = "# gpgpusim-serve-trace v2"
)

// Format writes the trace in the replayable file format:
//
//	# gpgpusim-serve-trace v1
//	# arrival_cycles seq_len steps
//	104 12 1
//	2260 12 2
//
// One record per line, fields space-separated, '#' lines and blank lines
// ignored on parse. Decode traces (any request with Decode > 0) write
// the v2 format instead:
//
//	# gpgpusim-serve-trace v2
//	# arrival_cycles prefill decode
//	104 12 4
//
// ParseTrace(Format(t)) round-trips exactly for both versions.
func (t Trace) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.decodeMode() {
		fmt.Fprintln(bw, traceHeaderV2)
		fmt.Fprintln(bw, "# arrival_cycles prefill decode")
		for _, r := range t.Requests {
			fmt.Fprintf(bw, "%d %d %d\n", r.Arrival, r.Prefill, r.Decode)
		}
		return bw.Flush()
	}
	fmt.Fprintln(bw, traceHeader)
	fmt.Fprintln(bw, "# arrival_cycles seq_len steps")
	for _, r := range t.Requests {
		fmt.Fprintf(bw, "%d %d %d\n", r.Arrival, r.SeqLen, r.Steps)
	}
	return bw.Flush()
}

// ParseTrace reads the replayable trace file format, v1 or v2. It is
// strict where a stochastic simulator must be: malformed or negative
// timestamps, truncated records (fewer than three fields), trailing junk
// fields, malformed prefill/decode counts, a v2 header after the first
// record and out-of-order arrivals are all errors, never silently
// skipped — a corrupted trace must not quietly simulate a different
// scenario. It never panics on arbitrary input (FuzzTraceParse).
func ParseTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var tr Trace
	v2 := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			if text == traceHeaderV2 {
				if len(tr.Requests) > 0 {
					return Trace{}, fmt.Errorf("serve: trace line %d: v2 header after %d records (the version header must precede every record)", line, len(tr.Requests))
				}
				v2 = true
			}
			continue
		}
		fields := strings.Fields(text)
		layout := "arrival_cycles seq_len steps"
		if v2 {
			layout = "arrival_cycles prefill decode"
		}
		if len(fields) < 3 {
			return Trace{}, fmt.Errorf("serve: trace line %d: truncated record %q (want: %s)", line, text, layout)
		}
		if len(fields) > 3 {
			return Trace{}, fmt.Errorf("serve: trace line %d: %d fields in %q (want 3: %s)", line, len(fields), text, layout)
		}
		arrival, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("serve: trace line %d: bad arrival timestamp %q: %v", line, fields[0], err)
		}
		req := Request{ID: len(tr.Requests), Arrival: arrival}
		if v2 {
			prefill, err := strconv.Atoi(fields[1])
			if err != nil || prefill < 1 {
				return Trace{}, fmt.Errorf("serve: trace line %d: bad prefill %q (positive integer required)", line, fields[1])
			}
			decode, err := strconv.Atoi(fields[2])
			if err != nil || decode < 1 {
				return Trace{}, fmt.Errorf("serve: trace line %d: bad decode %q (positive integer required)", line, fields[2])
			}
			req.SeqLen, req.Steps = prefill, decode
			req.Prefill, req.Decode = prefill, decode
		} else {
			seqLen, err := strconv.Atoi(fields[1])
			if err != nil || seqLen < 1 {
				return Trace{}, fmt.Errorf("serve: trace line %d: bad seq_len %q (positive integer required)", line, fields[1])
			}
			steps, err := strconv.Atoi(fields[2])
			if err != nil || steps < 1 {
				return Trace{}, fmt.Errorf("serve: trace line %d: bad steps %q (positive integer required)", line, fields[2])
			}
			req.SeqLen, req.Steps = seqLen, steps
		}
		if n := len(tr.Requests); n > 0 && arrival < tr.Requests[n-1].Arrival {
			return Trace{}, fmt.Errorf("serve: trace line %d: arrival %d before previous arrival %d (trace must be time-ordered)", line, arrival, tr.Requests[n-1].Arrival)
		}
		tr.Requests = append(tr.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("serve: reading trace: %w", err)
	}
	return tr, nil
}
