package serve

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestPoissonDeterministicAndOrdered(t *testing.T) {
	a := Poisson(42, 100, 64, 12, 2)
	b := Poisson(42, 100, 64, 12, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different Poisson traces")
	}
	if err := a.validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	c := Poisson(43, 100, 64, 12, 2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
	if len(a.Requests) != 64 {
		t.Fatalf("want 64 requests, got %d", len(a.Requests))
	}
	for i, r := range a.Requests {
		if r.ID != i || r.SeqLen != 12 || r.Steps != 2 {
			t.Fatalf("request %d mis-stamped: %+v", i, r)
		}
	}
}

func TestBurstyDeterministicAndOrdered(t *testing.T) {
	a := Bursty(7, 400, 4, 50_000, 32, 8, 1)
	b := Bursty(7, 400, 4, 50_000, 32, 8, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different bursty traces")
	}
	if err := a.validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	// the off-gaps must actually show up: the max inter-arrival gap should
	// dwarf the median one
	var gaps []uint64
	for i := 1; i < len(a.Requests); i++ {
		gaps = append(gaps, a.Requests[i].Arrival-a.Requests[i-1].Arrival)
	}
	var maxGap uint64
	for _, g := range gaps {
		if g > maxGap {
			maxGap = g
		}
	}
	var sum uint64
	for _, g := range gaps {
		sum += g
	}
	if mean := sum / uint64(len(gaps)); maxGap < 3*mean {
		t.Fatalf("trace does not look bursty: max gap %d vs mean %d", maxGap, mean)
	}
}

func TestMergeOrdersAndRenumbers(t *testing.T) {
	a := Trace{Requests: []Request{
		{ID: 0, Arrival: 10, SeqLen: 4, Steps: 1},
		{ID: 1, Arrival: 30, SeqLen: 4, Steps: 1},
	}}
	b := Trace{Requests: []Request{
		{ID: 0, Arrival: 5, SeqLen: 8, Steps: 2},
		{ID: 1, Arrival: 10, SeqLen: 8, Steps: 2},
	}}
	m := Merge(a, b)
	wantArrivals := []uint64{5, 10, 10, 30}
	wantSeqLens := []int{8, 4, 8, 4} // stable: a's arrival-10 request first
	for i, r := range m.Requests {
		if r.ID != i {
			t.Fatalf("request %d not renumbered: %+v", i, r)
		}
		if r.Arrival != wantArrivals[i] || r.SeqLen != wantSeqLens[i] {
			t.Fatalf("merged order wrong at %d: %+v", i, r)
		}
	}
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFormatParseRoundTrip(t *testing.T) {
	want := Merge(Poisson(3, 200, 10, 6, 1), Bursty(4, 500, 3, 20_000, 6, 4, 3))
	var buf bytes.Buffer
	if err := want.Format(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("round trip failed to parse: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseTraceRejects pins the parser's strictness: every malformed
// shape errors (never skipped, never a panic).
func TestParseTraceRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"malformed_timestamp", "abc 6 1\n", "bad arrival timestamp"},
		{"negative_timestamp", "-5 6 1\n", "bad arrival timestamp"},
		{"float_timestamp", "1.5 6 1\n", "bad arrival timestamp"},
		{"huge_timestamp", "99999999999999999999999999 6 1\n", "bad arrival timestamp"},
		{"truncated_one_field", "100\n", "truncated record"},
		{"truncated_two_fields", "100 6\n", "truncated record"},
		{"trailing_junk", "100 6 1 9\n", "4 fields"},
		{"zero_seqlen", "100 0 1\n", "bad seq_len"},
		{"negative_seqlen", "100 -3 1\n", "bad seq_len"},
		{"malformed_seqlen", "100 six 1\n", "bad seq_len"},
		{"zero_steps", "100 6 0\n", "bad steps"},
		{"malformed_steps", "100 6 x\n", "bad steps"},
		{"out_of_order", "200 6 1\n100 6 1\n", "time-ordered"},
		{"out_of_order_after_comment", "200 6 1\n# note\n100 6 1\n", "time-ordered"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("parse of %q succeeded, want error containing %q", c.in, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestParseTraceAccepts(t *testing.T) {
	in := "# gpgpusim-serve-trace v1\n\n# a comment\n0 6 1\n  100   8   2  \n100 4 1\n"
	got, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{
		{ID: 0, Arrival: 0, SeqLen: 6, Steps: 1},
		{ID: 1, Arrival: 100, SeqLen: 8, Steps: 2},
		{ID: 2, Arrival: 100, SeqLen: 4, Steps: 1}, // ties are in-order
	}
	if !reflect.DeepEqual(got.Requests, want) {
		t.Fatalf("parsed %+v, want %+v", got.Requests, want)
	}
}

func TestOfferedLoad(t *testing.T) {
	tr := Trace{Requests: []Request{
		{Arrival: 0, SeqLen: 1, Steps: 1},
		{Arrival: 500_000, SeqLen: 1, Steps: 1},
		{Arrival: 1_000_000, SeqLen: 1, Steps: 1},
	}}
	if got := tr.OfferedLoad(); got != 2 {
		t.Fatalf("offered load = %v, want 2 req/Mcycle", got)
	}
	if got := (Trace{}).OfferedLoad(); got != 0 {
		t.Fatalf("empty trace offered load = %v, want 0", got)
	}
}

func TestTraceV2FormatParseRoundTrip(t *testing.T) {
	want := Poisson(9, 150, 8, 6, 1).WithDecode(4, 3)
	if err := want.validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := want.Format(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "# gpgpusim-serve-trace v2\n") {
		t.Fatalf("decode trace did not format as v2:\n%s", text)
	}
	got, err := ParseTrace(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round trip failed to parse: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseTraceV2Rejects pins the v2 parser's strictness: malformed
// prefill/decode counts and a late version header error, never panic.
func TestParseTraceV2Rejects(t *testing.T) {
	const h = "# gpgpusim-serve-trace v2\n"
	cases := []struct {
		name, in, wantErr string
	}{
		{"zero_prefill", h + "100 0 2\n", "bad prefill"},
		{"negative_prefill", h + "100 -3 2\n", "bad prefill"},
		{"malformed_prefill", h + "100 six 2\n", "bad prefill"},
		{"zero_decode", h + "100 6 0\n", "bad decode"},
		{"malformed_decode", h + "100 6 x\n", "bad decode"},
		{"truncated", h + "100 6\n", "truncated record"},
		{"trailing_junk", h + "100 6 2 9\n", "4 fields"},
		{"out_of_order", h + "200 6 2\n100 6 2\n", "time-ordered"},
		{"header_after_records", "100 6 2\n" + h, "header must precede"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("parse of %q succeeded, want error containing %q", c.in, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestParseTraceV2Accepts: v2 records land in both the decode fields and
// their SeqLen/Steps mirrors, and v1 traces still parse with zero decode
// fields.
func TestParseTraceV2Accepts(t *testing.T) {
	in := "# gpgpusim-serve-trace v2\n# a comment\n0 6 1\n100 4 3\n"
	got, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{
		{ID: 0, Arrival: 0, SeqLen: 6, Steps: 1, Prefill: 6, Decode: 1},
		{ID: 1, Arrival: 100, SeqLen: 4, Steps: 3, Prefill: 4, Decode: 3},
	}
	if !reflect.DeepEqual(got.Requests, want) {
		t.Fatalf("parsed %+v, want %+v", got.Requests, want)
	}
	v1, err := ParseTrace(strings.NewReader("# gpgpusim-serve-trace v1\n0 6 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r := v1.Requests[0]; r.Prefill != 0 || r.Decode != 0 {
		t.Fatalf("v1 record grew decode fields: %+v", r)
	}
}

// TestValidateRejectsMixedDecode: a trace mixing v1 and v2 requests has
// no well-defined scheduler mode.
func TestValidateRejectsMixedDecode(t *testing.T) {
	tr := Trace{Requests: []Request{
		{ID: 0, Arrival: 0, SeqLen: 4, Steps: 3, Prefill: 4, Decode: 3},
		{ID: 1, Arrival: 10, SeqLen: 6, Steps: 1},
	}}
	if err := tr.validate(); err == nil {
		t.Fatal("mixed v1/v2 trace accepted")
	}
	bad := Trace{Requests: []Request{
		{ID: 0, Arrival: 0, SeqLen: 9, Steps: 3, Prefill: 4, Decode: 3},
	}}
	if err := bad.validate(); err == nil {
		t.Fatal("inconsistent seq_len/prefill mirror accepted")
	}
}
