package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateDiurnal = flag.Bool("update", false, "rewrite testdata/diurnal.trace from the generator")

// shiftTrace offsets every arrival by base cycles — used to place the
// diurnal segments one after another on the serving clock.
func shiftTrace(t Trace, base uint64) Trace {
	out := Trace{Requests: append([]Request(nil), t.Requests...)}
	for i := range out.Requests {
		out.Requests[i].Arrival += base
	}
	return out
}

// diurnalSegments are the per-segment request counts of the checked-in
// trace: a morning low, a midday burst peak, an evening low.
const (
	diurnalMorning = 6
	diurnalPeak    = 10
	diurnalEvening = 6
)

// diurnalTrace regenerates the checked-in testdata/diurnal.trace: a
// low→peak→low KV-cached decode day compressed to simulation scale.
// Sparse Poisson shoulders (25 req/Mcycle, prefill 3 / decode 2) bracket
// a bursty midday peak (400 req/Mcycle inside bursts of 5, prefill 4 /
// decode 3), each segment offset 50k cycles past the previous one so
// the scheduler drains between regimes. Everything is seeded, so the
// file is reproducible with `go test ./internal/serve -run Diurnal -update`.
func diurnalTrace() Trace {
	const gap = 50_000
	morning := Poisson(11, 25, diurnalMorning, 0, 0).WithDecode(3, 2)
	peak := Bursty(12, 400, 5, 30_000, diurnalPeak, 0, 0).WithDecode(4, 3)
	evening := Poisson(13, 25, diurnalEvening, 0, 0).WithDecode(3, 2)

	morningEnd := morning.Requests[len(morning.Requests)-1].Arrival
	peak = shiftTrace(peak, morningEnd+gap)
	peakEnd := peak.Requests[len(peak.Requests)-1].Arrival
	evening = shiftTrace(evening, peakEnd+gap)
	return Merge(morning, peak, evening)
}

// TestDiurnalTrace pins testdata/diurnal.trace to its generator and
// replays it end to end: the checked-in bytes must parse back to exactly
// the generated trace (v2 format), the midday segment must actually be
// the dense one, and a full serving run over it must complete every
// request under the usual admission invariants.
func TestDiurnalTrace(t *testing.T) {
	want := diurnalTrace()
	path := filepath.Join("testdata", "diurnal.trace")
	if *updateDiurnal {
		var buf bytes.Buffer
		if err := want.Format(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update): %v", path, err)
	}
	if !strings.HasPrefix(string(data), traceHeaderV2+"\n") {
		t.Fatalf("%s is not a v2 trace:\n%.80s", path, data)
	}
	got, err := ParseTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(want.Requests) {
		t.Fatalf("%s has %d requests, generator yields %d (stale — regenerate with -update)",
			path, len(got.Requests), len(want.Requests))
	}
	for i := range want.Requests {
		if got.Requests[i] != want.Requests[i] {
			t.Fatalf("%s request %d = %+v, generator yields %+v (stale — regenerate with -update)",
				path, i, got.Requests[i], want.Requests[i])
		}
	}

	// diurnal shape: the peak segment's mean inter-arrival spacing must
	// be tighter than either shoulder's
	spacing := func(reqs []Request) float64 {
		span := reqs[len(reqs)-1].Arrival - reqs[0].Arrival
		return float64(span) / float64(len(reqs)-1)
	}
	morning := got.Requests[:diurnalMorning]
	peak := got.Requests[diurnalMorning : diurnalMorning+diurnalPeak]
	evening := got.Requests[diurnalMorning+diurnalPeak:]
	if s := spacing(peak); s >= spacing(morning) || s >= spacing(evening) {
		t.Fatalf("peak spacing %.0f not denser than shoulders (%.0f morning, %.0f evening)",
			s, spacing(morning), spacing(evening))
	}

	t.Run("replay", func(t *testing.T) {
		res, err := Run(testConfig(), got)
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, res)
		if !res.Decode {
			t.Fatal("diurnal trace did not select decode mode")
		}
		if res.PeakKVBytes == 0 {
			t.Fatal("no KV cache resident during the diurnal replay")
		}
		if res.PeakBatch < 2 {
			t.Fatalf("peak batch %d: the midday burst never overlapped requests", res.PeakBatch)
		}
	})
}
