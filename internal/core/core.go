// Package core is the top-level facade of the reproduction: it wires the
// functional machine, the cycle-level timing engine, the hardware oracle,
// the power model and the workloads into the paper's experiments —
// MNIST correlation (Figs. 6-7), the power breakdown (Fig. 8), and the
// conv_sample case studies (Figs. 9-25).
package core

import (
	"fmt"
	"math"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/exec"
	"repro/internal/hwmodel"
	"repro/internal/mnist"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/torch"
)

// GPU selects a modelled card.
type GPU string

// Supported GPU models.
const (
	GTX1050   GPU = "gtx1050"
	GTX1080Ti GPU = "gtx1080ti"
)

// TimingConfig returns the timing configuration for a GPU.
func (g GPU) TimingConfig() (timing.Config, error) {
	switch g {
	case GTX1050:
		return timing.GTX1050(), nil
	case GTX1080Ti:
		return timing.GTX1080Ti(), nil
	}
	return timing.Config{}, fmt.Errorf("core: unknown GPU %q", g)
}

// Oracle returns the hardware oracle for a GPU.
func (g GPU) Oracle() (*hwmodel.Oracle, error) {
	switch g {
	case GTX1050:
		return hwmodel.GTX1050(), nil
	case GTX1080Ti:
		return hwmodel.GTX1080Ti(), nil
	}
	return nil, fmt.Errorf("core: unknown GPU %q", g)
}

// MNISTCorrelationResult holds the Figs. 6-8 data.
type MNISTCorrelationResult struct {
	Images      int
	Correlation stats.Correlation
	Power       power.Breakdown
	Engine      *timing.Engine
	SimCycles   uint64
	HWCycles    float64
	SelfCheckOK bool
	GPUClasses  []int
	CPUClasses  []int
}

// RunMNISTCorrelation reproduces §IV: run LeNet/MNIST inference on the
// detailed timing model and on the hardware oracle, correlate per-kernel
// cycles (Figs. 6-7), and compute the power breakdown (Fig. 8).
func RunMNISTCorrelation(images int) (*MNISTCorrelationResult, error) {
	ds := mnist.NewDataset(1)
	imgs, _ := ds.Batch(images)

	// --- detailed simulator (performance mode, GTX 1050) ---
	simDev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	eng, err := timing.New(timing.GTX1050())
	if err != nil {
		return nil, err
	}
	simDev.Ctx.SetRunner(timing.Runner{E: eng})
	simModel, err := mnist.NewLeNet(simDev, 7, mnist.DefaultAlgos())
	if err != nil {
		return nil, err
	}
	if _, err := simModel.Forward(imgs, images); err != nil {
		return nil, fmt.Errorf("core: simulator run: %w", err)
	}

	// --- hardware oracle (same weights: same seed) ---
	hwDev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	oracle := hwmodel.GTX1050()
	hwDev.Ctx.SetRunner(oracle)
	hwModel, err := mnist.NewLeNet(hwDev, 7, mnist.DefaultAlgos())
	if err != nil {
		return nil, err
	}
	if _, err := hwModel.Forward(imgs, images); err != nil {
		return nil, fmt.Errorf("core: oracle run: %w", err)
	}

	// pair per-launch samples by position (same deterministic sequence)
	simLog := simDev.Ctx.KernelStatsLog()
	hwLog := oracle.Samples
	n := len(simLog)
	if len(hwLog) < n {
		n = len(hwLog)
	}
	var samples []stats.KernelTime
	for i := 0; i < n; i++ {
		if simLog[i].Name != hwLog[i].Name {
			return nil, fmt.Errorf("core: kernel sequences diverged at %d: %s vs %s",
				i, simLog[i].Name, hwLog[i].Name)
		}
		samples = append(samples, stats.KernelTime{
			Name: simLog[i].Name, SimCycles: float64(simLog[i].Cycles),
			HWCycles: hwLog[i].Cycles, Launches: 1,
		})
	}
	corr := stats.Correlate(samples)
	corr.SortByHW()

	pm := power.DefaultModel()
	pb := pm.Average(eng.Stats(), eng.Cycle(), eng.Config().ClockMHz)

	// self check on the functional device (the sample's own validation)
	fnModel, _, err := mnist.NewDefaultLeNet(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	ok, gpu, cpu, err := fnModel.SelfCheck(imgs, images)
	if err != nil {
		return nil, err
	}

	return &MNISTCorrelationResult{
		Images:      images,
		Correlation: corr,
		Power:       pb,
		Engine:      eng,
		SimCycles:   eng.Cycle(),
		HWCycles:    corr.TotalHW,
		SelfCheckOK: ok,
		GPUClasses:  gpu,
		CPUClasses:  cpu,
	}, nil
}

// ConvDirection is a conv_sample pass direction.
type ConvDirection string

// Directions of the §V-A sweep.
const (
	Forward        ConvDirection = "fwd"
	BackwardData   ConvDirection = "bwddata"
	BackwardFilter ConvDirection = "bwdfilter"
)

// ConvSampleShape sizes the conv_sample workload.
type ConvSampleShape struct {
	N, C, H, W int
	K, R       int
	Pad        int
}

// DefaultConvShape mirrors a small conv_sample configuration that every
// algorithm supports (3x3 stride-1; 28x28 keeps plain FFT in range).
func DefaultConvShape() ConvSampleShape {
	return ConvSampleShape{N: 1, C: 8, H: 28, W: 28, K: 8, R: 3, Pad: 1}
}

// AlgorithmsFor lists the paper's §V-A algorithm sweep per direction.
func AlgorithmsFor(dir ConvDirection) []string {
	switch dir {
	case Forward:
		return []string{"fft", "fft_tiling", "gemm", "implicit_gemm", "winograd", "winograd_nonfused"}
	case BackwardData:
		return []string{"algo0", "algo1", "fft_tiling", "winograd", "winograd_nonfused"}
	case BackwardFilter:
		return []string{"algo0", "algo1", "algo3", "fft", "fft_tiling", "winograd_nonfused"}
	}
	return nil
}

// ConvSampleResult carries the timing engine (for the AerialVision
// plots) and kernel log of one conv_sample run.
type ConvSampleResult struct {
	Algo    string
	Dir     ConvDirection
	Engine  *timing.Engine
	Ctx     *cudart.Context
	Cycles  uint64
	Kernels []cudart.KernelStats
}

// RunConvSample runs one (direction, algorithm) case of §V on the given
// GPU's timing model.
func RunConvSample(gpu GPU, dir ConvDirection, algo string, shape ConvSampleShape) (*ConvSampleResult, error) {
	return RunConvSampleWorkers(gpu, dir, algo, shape, 1)
}

// RunConvSampleWorkers is RunConvSample with the timing engine stepping
// SM cores across `workers` host goroutines (0 = NumCPU). Results are
// identical for any worker count; only wall-clock time changes.
func RunConvSampleWorkers(gpu GPU, dir ConvDirection, algo string, shape ConvSampleShape, workers int) (*ConvSampleResult, error) {
	cfg, err := gpu.TimingConfig()
	if err != nil {
		return nil, err
	}
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		return nil, err
	}
	eng, err := timing.New(cfg, timing.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	ctx.SetRunner(timing.Runner{E: eng})

	xd := cudnn.TensorDesc{N: shape.N, C: shape.C, H: shape.H, W: shape.W}
	fd := cudnn.FilterDesc{K: shape.K, C: shape.C, R: shape.R, S: shape.R}
	cd := cudnn.ConvDesc{Pad: shape.Pad, Stride: 1}
	oh := cd.OutDim(xd.H, fd.R)
	ow := cd.OutDim(xd.W, fd.S)
	yd := cudnn.TensorDesc{N: xd.N, C: fd.K, H: oh, W: ow}

	x := synth(xd.Count(), 0.7)
	w := synth(fd.Count(), -0.3)
	dy := synth(yd.Count(), 0.2)
	px, err := ctx.Malloc(uint64(4 * xd.Count()))
	if err != nil {
		return nil, err
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * fd.Count()))
	if err != nil {
		return nil, err
	}
	ctx.MemcpyF32HtoD(pw, w)
	pdy, err := ctx.Malloc(uint64(4 * yd.Count()))
	if err != nil {
		return nil, err
	}
	ctx.MemcpyF32HtoD(pdy, dy)
	py, err := ctx.Malloc(uint64(4 * yd.Count()))
	if err != nil {
		return nil, err
	}
	pdx, err := ctx.Malloc(uint64(4 * xd.Count()))
	if err != nil {
		return nil, err
	}
	pdw, err := ctx.Malloc(uint64(4 * fd.Count()))
	if err != nil {
		return nil, err
	}

	switch dir {
	case Forward:
		var fa cudnn.ConvFwdAlgo
		switch algo {
		case "fft":
			fa = cudnn.FwdAlgoFFT
		case "fft_tiling":
			fa = cudnn.FwdAlgoFFTTiling
		case "gemm":
			fa = cudnn.FwdAlgoGemm
		case "implicit_gemm":
			fa = cudnn.FwdAlgoImplicitGemm
		case "winograd":
			fa = cudnn.FwdAlgoWinograd
		case "winograd_nonfused":
			fa = cudnn.FwdAlgoWinogradNonfused
		default:
			return nil, fmt.Errorf("core: unknown forward algorithm %q", algo)
		}
		if _, err := h.ConvolutionForward(fa, px, xd, pw, fd, cd, py); err != nil {
			return nil, err
		}
	case BackwardData:
		var ba cudnn.ConvBwdDataAlgo
		switch algo {
		case "algo0":
			ba = cudnn.BwdDataAlgo0
		case "algo1":
			ba = cudnn.BwdDataAlgo1
		case "fft_tiling":
			ba = cudnn.BwdDataFFTTiling
		case "winograd":
			ba = cudnn.BwdDataWinograd
		case "winograd_nonfused":
			ba = cudnn.BwdDataWinogradNonfused
		default:
			return nil, fmt.Errorf("core: unknown backward-data algorithm %q", algo)
		}
		if err := h.ConvolutionBackwardData(ba, pw, fd, pdy, yd, cd, pdx, xd); err != nil {
			return nil, err
		}
	case BackwardFilter:
		var ba cudnn.ConvBwdFilterAlgo
		switch algo {
		case "algo0":
			ba = cudnn.BwdFilterAlgo0
		case "algo1":
			ba = cudnn.BwdFilterAlgo1
		case "algo3":
			ba = cudnn.BwdFilterAlgo3
		case "fft":
			ba = cudnn.BwdFilterFFT
		case "fft_tiling":
			ba = cudnn.BwdFilterFFTTiling
		case "winograd_nonfused":
			ba = cudnn.BwdFilterWinogradNonfused
		default:
			return nil, fmt.Errorf("core: unknown backward-filter algorithm %q", algo)
		}
		if err := h.ConvolutionBackwardFilter(ba, px, xd, pdy, yd, cd, pdw, fd); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown direction %q", dir)
	}

	return &ConvSampleResult{
		Algo: algo, Dir: dir, Engine: eng, Ctx: ctx,
		Cycles: eng.Cycle(), Kernels: ctx.KernelStatsLog(),
	}, nil
}

func synth(n int, phase float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(float64(i)*0.37+float64(phase))) * 0.5
	}
	return out
}
