package core

import (
	"fmt"
	"math"
	"testing"
)

// Training-sample driver tests: loss trajectory against the CPU mirror
// (RunTrainSample enforces the per-step tolerance itself), kernel-mix
// coverage of the train module, and replay-mode equivalence. The
// BenchmarkTrainStep figures are recorded in BENCH_9.json.

func TestRunTrainSample(t *testing.T) {
	res, err := RunTrainSample(1, 3, 8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 3 || len(res.CPULosses) != 3 {
		t.Fatalf("want 3 per-step losses, got %d device / %d cpu", len(res.Losses), len(res.CPULosses))
	}
	for i, l := range res.Losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) || l <= 0 {
			t.Fatalf("step %d loss %g not a finite positive value", i, l)
		}
	}
	if res.MaxLossDiff > TrainLossTolerance {
		t.Fatalf("device/CPU loss divergence %g exceeds %g", res.MaxLossDiff, TrainLossTolerance)
	}
	if res.Launches == 0 || res.TotalCycles == 0 || res.FirstStepCycles == 0 {
		t.Fatalf("implausible run: %d launches, %d cycles, %d first-step cycles",
			res.Launches, res.TotalCycles, res.FirstStepCycles)
	}
	if res.TokensPerMcycle() <= 0 {
		t.Fatalf("tokens/Mcycle = %g", res.TokensPerMcycle())
	}
	// every train-module kernel must appear in the mix: forward reuse is
	// not enough, the backward pass itself has to run on the device
	seen := map[string]bool{}
	for _, k := range res.PerKernel {
		seen[k.Name] = true
	}
	for _, want := range []string{
		"sgemm_tn_batched", "layernorm_backward", "gelu_backward",
		"softmax_backward", "softmax_xent_backward", "embedding_backward",
		"accumulate_add", "sgd_update",
	} {
		if !seen[want] {
			t.Errorf("kernel %q missing from the training mix %v", want, keys(seen))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRunTrainReplay pins the hybrid-replay contract for training: the
// first step simulates in detail (populating the cache), later steps
// retire repeated launch signatures from it, and — because replay
// re-executes functionally when the memo read-set fails on updated
// weights — the loss trajectory matches the detailed run to float-
// atomics rounding. (The backward pass accumulates dgamma/dbeta and
// embedding gradients through atom.global.add.f32; a replayed launch
// interprets those adds in functional order, the detailed model drains
// them in modelled order, and the sub-ulp rounding differences compound
// through the weight updates.)
func TestRunTrainReplay(t *testing.T) {
	const steps = 3
	detailed, err := RunTrainSample(1, steps, 8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := RunTrainSample(1, steps, 8, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if detailed.ReplayHits != 0 || detailed.ReplayMisses != 0 || detailed.Coverage != 0 {
		t.Fatalf("detailed run has replay activity: hits %d misses %d coverage %g",
			detailed.ReplayHits, detailed.ReplayMisses, detailed.Coverage)
	}
	if hybrid.Launches != detailed.Launches {
		t.Fatalf("launch count differs: hybrid %d vs detailed %d", hybrid.Launches, detailed.Launches)
	}
	if hybrid.Launches%steps != 0 {
		t.Fatalf("launches %d not divisible by %d steps", hybrid.Launches, steps)
	}
	perStep := hybrid.Launches / steps
	// per-step activations are freed between steps, so the allocator
	// re-issues identical addresses and every steady-state launch
	// signature repeats: steps 2..n replay entirely from the cache
	if want := uint64(perStep); hybrid.ReplayMisses != want {
		t.Fatalf("replay misses %d, want first-step launches %d", hybrid.ReplayMisses, want)
	}
	if want := uint64(perStep * (steps - 1)); hybrid.ReplayHits != want {
		t.Fatalf("replay hits %d, want %d (steps 2..%d fully replayed)", hybrid.ReplayHits, want, steps)
	}
	if min := float64(steps-1) / float64(steps); hybrid.Coverage < min {
		t.Fatalf("coverage %g below %g", hybrid.Coverage, min)
	}
	// first step is always detailed, so its cycle count matches exactly
	if hybrid.FirstStepCycles != detailed.FirstStepCycles {
		t.Fatalf("first-step cycles differ: hybrid %d vs detailed %d",
			hybrid.FirstStepCycles, detailed.FirstStepCycles)
	}
	// replay memoizes timing, not semantics: losses track the detailed
	// run to atomic-accumulation rounding
	for i := range detailed.Losses {
		d := math.Abs(float64(hybrid.Losses[i] - detailed.Losses[i]))
		if d > 1e-5 {
			t.Fatalf("step %d loss drifted under replay: %g vs %g (diff %g)",
				i, hybrid.Losses[i], detailed.Losses[i], d)
		}
	}
}

// BenchmarkTrainStep measures modelled training throughput on the GTX
// 1050 config, detailed vs hybrid replay. BENCH_9.json records the
// tokens_per_mcycle and coverage metrics from this benchmark.
func BenchmarkTrainStep(b *testing.B) {
	for _, mode := range []struct {
		name   string
		replay bool
	}{{"detailed", false}, {"hybrid", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var last *TrainResult
			for i := 0; i < b.N; i++ {
				res, err := RunTrainSample(1, 5, 8, 0, mode.replay)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.TokensPerMcycle(), "tokens_per_mcycle")
			b.ReportMetric(last.Coverage, "coverage")
			b.ReportMetric(float64(last.Losses[len(last.Losses)-1]), "final_loss")
			b.Log(fmt.Sprintf("losses=%v replay hits=%d misses=%d memo=%d",
				last.Losses, last.ReplayHits, last.ReplayMisses, last.ReplayMemoApplied))
		})
	}
}
