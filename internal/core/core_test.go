package core_test

import (
	"testing"

	"repro/internal/core"
)

// TestConvSampleSweepAllAlgorithms exercises every (direction, algorithm)
// pair of the paper's §V-A sweep end to end under the timing model.
func TestConvSampleSweepAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow under -short")
	}
	shape := core.ConvSampleShape{N: 1, C: 4, H: 16, W: 16, K: 4, R: 3, Pad: 1}
	for _, dir := range []core.ConvDirection{core.Forward, core.BackwardData, core.BackwardFilter} {
		for _, algo := range core.AlgorithmsFor(dir) {
			res, err := core.RunConvSample(core.GTX1080Ti, dir, algo, shape)
			if err != nil {
				t.Errorf("%s/%s: %v", dir, algo, err)
				continue
			}
			if res.Cycles == 0 {
				t.Errorf("%s/%s: no cycles simulated", dir, algo)
			}
			if len(res.Kernels) == 0 {
				t.Errorf("%s/%s: no kernels launched", dir, algo)
			}
		}
	}
}

// TestMNISTCorrelationShape checks the §IV reproduction invariants on a
// single image: self-check passes, correlation is positive and strong,
// the power breakdown is core-dominated with a sizeable idle share.
func TestMNISTCorrelationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("correlation run is slow under -short")
	}
	res, err := core.RunMNISTCorrelation(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SelfCheckOK {
		t.Errorf("self-check failed: %v vs %v", res.GPUClasses, res.CPUClasses)
	}
	if res.Correlation.Pearson < 0.5 {
		t.Errorf("per-kernel Pearson = %.2f, want strong positive correlation", res.Correlation.Pearson)
	}
	if res.Correlation.OverallError > 0.5 {
		t.Errorf("overall error = %.0f%%, want the paper's within-30%% neighbourhood", res.Correlation.OverallError*100)
	}
	if len(res.Correlation.Kernels) < 10 {
		t.Errorf("only %d distinct kernels; the MNIST mix should be richer", len(res.Correlation.Kernels))
	}
	// Fig. 7 kernel names must appear in the mix
	want := map[string]bool{
		"fft2d_r2c_32x32": false, "fft2d_r2c_16x16": false,
		"fft2d_c2r_32x32": false, "cgemm": false, "gemv2t": false,
		"lrn_forward": false, "winograd_fused_2x2_3x3": false,
	}
	for _, k := range res.Correlation.Kernels {
		if _, ok := want[k.Name]; ok {
			want[k.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("kernel %s missing from the MNIST mix", name)
		}
	}
	total := res.Power.Total()
	if res.Power.Core/total < 0.5 {
		t.Errorf("core power share = %.0f%%, want dominant", res.Power.Core/total*100)
	}
	if res.Power.Idle/total < 0.1 || res.Power.Idle/total > 0.45 {
		t.Errorf("idle power share = %.0f%%, want a sizeable minority", res.Power.Idle/total*100)
	}
}
