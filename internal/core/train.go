package core

// The transformer-training sample: the shared driver behind
// `cmd/gpgpusim -workload train` and BenchmarkTrainStep. Each step runs
// the full training pipeline — encoder forward, tied-embedding logits,
// fused softmax+cross-entropy, backward through every block, SGD — as
// one long kernel chain, and is checked step-for-step against the
// independent CPUTrainState host mirror. Per-step activation
// allocations are freed between steps so the first-fit allocator
// re-issues identical addresses; with replay enabled the steady-state
// steps then retire from the replay cache (the weight updates fail the
// memo read-set check, so replay degrades gracefully to memoized timing
// with functional re-execution).

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// TrainLossTolerance is the permitted |device - CPU oracle| divergence
// of the per-step mean loss (float32 kernels vs float64-reduction host
// math).
const TrainLossTolerance = 5e-2

// DefaultTrainLR is the SGD learning rate used by the sample.
const DefaultTrainLR = 0.05

// TrainResult summarises a multi-step training run.
type TrainResult struct {
	Config  torch.TransformerConfig
	Steps   int
	SeqLen  int
	LR      float32
	Replay  bool
	Workers int

	Launches        int
	FirstStepCycles uint64
	TotalCycles     uint64

	Losses         []float32 // device loss per step
	CPULosses      []float32 // host-mirror loss per step
	StepReplayHits []uint64  // replay-cache hits registered during each step
	MaxLossDiff    float64

	ReplayHits           uint64
	ReplayMisses         uint64
	ReplayResamples      uint64
	ReplayedCycles       uint64
	DetailedKernelCycles uint64
	ReplayDriftCycles    uint64
	ReplayMemoApplied    uint64
	Coverage             float64

	PerKernel []TransformerReplayKernelAgg
}

// TokensPerMcycle returns trained tokens per million modelled cycles.
func (r *TrainResult) TokensPerMcycle() float64 {
	return float64(r.Steps*r.SeqLen) / (float64(r.TotalCycles) / 1e6)
}

// trainSequence builds the deterministic token sequence for one step.
func trainSequence(step, seqLen, vocab int) []int32 {
	ids := make([]int32, seqLen)
	for j := range ids {
		ids[j] = int32((step*17 + j*3 + 1) % vocab)
	}
	return ids
}

// RunTrainSample trains the sample encoder for `steps` steps of `seqLen`
// tokens on one GTX 1050 engine with `workers` worker goroutines,
// verifying every step's loss against the CPU mirror.
func RunTrainSample(workers, steps, seqLen, resampleEvery int, replay bool) (*TrainResult, error) {
	cfg := DefaultTransformerConfig()
	if steps < 1 {
		steps = 1
	}
	if seqLen < 1 {
		seqLen = 1
	}
	if seqLen > cfg.MaxSeq {
		return nil, fmt.Errorf("core: train seqLen %d exceeds MaxSeq %d", seqLen, cfg.MaxSeq)
	}

	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	tcfg := timing.GTX1050()
	tcfg.ReplayEnabled = replay
	tcfg.ReplayResampleEvery = resampleEvery
	eng, err := timing.New(tcfg, timing.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	dev.Ctx.SetRunner(timing.Runner{E: eng})

	model, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		return nil, err
	}
	tr, err := torch.NewTransformerTrainer(dev, model, DefaultTrainLR)
	if err != nil {
		return nil, err
	}
	cpu := torch.NewCPUTrainState(model)

	// Prime the allocator: reserve-and-release one large span above the
	// permanent weights. Without it step 0 carves the pristine bump
	// region while steps 1+ carve a recycled coalescing span, the two
	// make different first-fit placements around mid-step frees, and the
	// shifted addresses change launch signatures — replay would only
	// reach steady state at step 2. (Pages are materialised on write, so
	// the reservation itself costs nothing.)
	arena, err := dev.Ctx.Malloc(16 << 20)
	if err != nil {
		return nil, err
	}
	if err := dev.Ctx.Free(arena); err != nil {
		return nil, err
	}

	// weights + gradient buffers are permanent; everything allocated past
	// this point is per-step state to be freed between steps
	baseline := map[uint64]bool{}
	for _, a := range dev.Ctx.Alloc.LiveAllocations() {
		baseline[a] = true
	}

	res := &TrainResult{
		Config: cfg, Steps: steps, SeqLen: seqLen, LR: DefaultTrainLR,
		Replay: replay, Workers: workers,
	}
	start := eng.Cycle()
	var prevHits uint64
	for step := 0; step < steps; step++ {
		stepStart := eng.Cycle()
		ids := trainSequence(step, seqLen, cfg.Vocab)
		devLoss, err := tr.TrainStep(ids)
		if err != nil {
			return nil, fmt.Errorf("core: train step %d: %w", step, err)
		}
		cpuLoss := cpu.TrainStep(ids, DefaultTrainLR)
		d := math.Abs(float64(devLoss - cpuLoss))
		if d > res.MaxLossDiff {
			res.MaxLossDiff = d
		}
		if d > TrainLossTolerance {
			return nil, fmt.Errorf("core: train step %d loss diverged: device %g, cpu oracle %g",
				step, devLoss, cpuLoss)
		}
		res.Losses = append(res.Losses, devLoss)
		res.CPULosses = append(res.CPULosses, cpuLoss)
		hits := eng.Stats().ReplayHits
		res.StepReplayHits = append(res.StepReplayHits, hits-prevHits)
		prevHits = hits
		if step == 0 {
			res.FirstStepCycles = eng.Cycle() - stepStart
		}
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			if !baseline[a] {
				if err := dev.Ctx.Free(a); err != nil {
					return nil, err
				}
			}
		}
	}
	res.TotalCycles = eng.Cycle() - start

	st := eng.Stats()
	res.ReplayHits = st.ReplayHits
	res.ReplayMisses = st.ReplayMisses
	res.ReplayResamples = st.ReplayResamples
	res.ReplayedCycles = st.ReplayedCycles
	res.DetailedKernelCycles = st.DetailedKernelCycles
	res.ReplayDriftCycles = st.ReplayDriftCycles
	res.ReplayMemoApplied = st.ReplayMemoApplied
	res.Coverage = st.ReplayCoverage()

	log := dev.Ctx.KernelStatsLog()
	res.Launches = len(log)
	byName := map[string]*TransformerReplayKernelAgg{}
	var names []string
	for _, k := range log {
		a := byName[k.Name]
		if a == nil {
			a = &TransformerReplayKernelAgg{Name: k.Name}
			byName[k.Name] = a
			names = append(names, k.Name)
		}
		a.Launches++
		a.Cycles += k.Cycles
		if k.Replayed {
			a.Replayed++
			a.ReplayedCycles += k.Cycles
		}
	}
	sort.Strings(names)
	for _, n := range names {
		res.PerKernel = append(res.PerKernel, *byName[n])
	}
	return res, nil
}
