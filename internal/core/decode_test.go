package core

import (
	"testing"
)

// TestRunDecodeSample exercises the decode sample driver end to end: the
// stream-overlapped and serialized greedy decodes are both verified
// token-for-token against GenerateCPU inside the driver, so here we pin
// the surrounding bookkeeping — launch counts, the overlap win, and the
// per-kernel aggregation covering the cache-aware attention kernels.
func TestRunDecodeSample(t *testing.T) {
	const seqs, promptLen, newTokens = 2, 3, 3
	res, err := RunDecodeSample(1, seqs, promptLen, newTokens)
	if err != nil {
		t.Fatal(err)
	}
	if res.Launches == 0 || res.TotalInstrs == 0 {
		t.Fatalf("decode issued no work: %+v", res)
	}
	if len(res.Tokens) != seqs {
		t.Fatalf("got %d token sequences, want %d", len(res.Tokens), seqs)
	}
	for i, toks := range res.Tokens {
		if len(toks) != newTokens {
			t.Fatalf("seq %d generated %d tokens, want %d", i, len(toks), newTokens)
		}
	}
	if res.Speedup() <= 1 {
		t.Errorf("per-sequence decode streams did not overlap: speedup %.3f", res.Speedup())
	}
	if res.TokensPerMcycle() <= 0 {
		t.Errorf("throughput metric not positive: %v", res.TokensPerMcycle())
	}
	want := map[string]bool{
		"kv_cache_append": false, "attn_qk_cached": false, "attn_av_cached": false,
		"softmax_causal": false, "logit_gemv": false, "argmax_u32": false,
	}
	for _, k := range res.PerKernel {
		if _, ok := want[k.Name]; ok {
			want[k.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("decode kernel %s never launched", name)
		}
	}
}

// TestRunDecodeReplay pins the replay contract on the decode chains:
// iteration-transient allocations are freed between generate batches,
// so every post-first-iteration launch replays, and the detailed
// baseline's first iteration matches the hybrid run's cycle for cycle.
func TestRunDecodeReplay(t *testing.T) {
	const iters = 3
	res, err := RunDecodeReplay(1, 2, 3, 3, iters, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Launches / iters
	if res.Launches != perIter*iters {
		t.Errorf("launch count %d not divisible by %d iterations", res.Launches, iters)
	}
	if got, want := res.ReplayMisses, uint64(perIter); got != want {
		t.Errorf("ReplayMisses = %d, want %d (first iteration only)", got, want)
	}
	if got, want := res.ReplayHits, uint64(perIter*(iters-1)); got != want {
		t.Errorf("ReplayHits = %d, want %d (every later launch)", got, want)
	}
	if want := float64(iters-1) / float64(iters); res.Coverage < want-1e-9 {
		t.Errorf("Coverage = %v, want %v", res.Coverage, want)
	}
	for _, k := range res.PerKernel {
		if want := k.Launches * (iters - 1) / iters; k.Replayed != want {
			t.Errorf("kernel %s: Replayed = %d, want %d of %d launches", k.Name, k.Replayed, want, k.Launches)
		}
	}

	det, err := RunDecodeReplay(1, 2, 3, 3, iters, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if det.ReplayHits != 0 || det.ReplayMisses != 0 || det.Coverage != 0 {
		t.Errorf("detailed run counted replay activity: %+v", det)
	}
	if res.FirstIterCycles != det.FirstIterCycles {
		t.Errorf("first (detailed) iteration diverged: hybrid %d vs detailed %d cycles",
			res.FirstIterCycles, det.FirstIterCycles)
	}
}

// BenchmarkDecodeThroughput measures greedy-decode throughput on the
// repeated generate batch: `detailed` simulates every iteration cycle
// by cycle, `hybrid` replays the steady-state decode steps after the
// first. BENCH_8.json records tokens/Mcycle and the replay coverage.
func BenchmarkDecodeThroughput(b *testing.B) {
	const (
		seqs, promptLen, newTokens = 2, 4, 6
		iters                      = 5
	)
	for _, mode := range []struct {
		name   string
		replay bool
	}{{"detailed", false}, {"hybrid", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunDecodeReplay(1, seqs, promptLen, newTokens, iters, 0, mode.replay)
				if err != nil {
					b.Fatal(err)
				}
				if mode.replay && res.Coverage == 0 {
					b.Fatal("hybrid decode never hit the replay cache")
				}
				b.ReportMetric(res.TokensPerMcycle(), "tokens_per_mcycle")
				b.ReportMetric(res.Coverage, "coverage")
			}
		})
	}
}
