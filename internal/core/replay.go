package core

// The transformer replay sample: the shared driver behind
// `cmd/gpgpusim -workload transformer -replay`, the kernel_replay.csv
// aerialvision export and BenchmarkTransformerReplay. It runs the same
// encoder forward batch `iters` times on one engine — the repeated-
// launch pattern hybrid replay mode exists for — and verifies the replay
// contract end to end: iteration 1 simulates in detail (checked against
// the CPU oracle) and warms the cache; every later iteration must
// reproduce iteration 1's outputs exactly even though its kernels retire
// from memoized timing.
//
// Between iterations the driver frees the iteration's transient
// allocations (id uploads, activation tensors, workspace leftovers) back
// to the first-fit allocator, which then re-issues byte-identical device
// addresses — so every re-launch builds an identical parameter image,
// the replay cache's hit condition.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// TransformerReplayKernelAgg aggregates one kernel name's launches
// across every iteration, splitting out the replayed ones.
type TransformerReplayKernelAgg struct {
	Name           string
	Launches       int
	Replayed       int    // launches retired from the replay cache
	Cycles         uint64 // all launches
	ReplayedCycles uint64 // replayed launches only
}

// TransformerReplayResult summarises a repeated-batch run.
type TransformerReplayResult struct {
	Config torch.TransformerConfig
	Seqs   int
	SeqLen int
	Iters  int
	Replay bool // hybrid replay mode on?

	Launches        int
	FirstIterCycles uint64 // modelled cycles of the (always detailed) first iteration
	TotalCycles     uint64 // modelled cycles of all iterations

	ReplayHits           uint64
	ReplayMisses         uint64
	ReplayResamples      uint64
	ReplayedCycles       uint64
	DetailedKernelCycles uint64
	ReplayDriftCycles    uint64
	ReplayMemoApplied    uint64  // hits served by the write-set memo fast path
	Coverage             float64 // hits / (hits+misses+resamples)

	MaxAbsDiff float64 // first iteration vs the ForwardCPU oracle
	PerKernel  []TransformerReplayKernelAgg
}

// RunTransformerReplay runs `iters` identical transformer forward
// batches (`seqs` sequences of `seqLen` tokens, stream-overlapped) on a
// single GTX 1050 engine with `workers` worker goroutines. With
// replay=true the engine runs in hybrid replay mode (resampleEvery as
// Config.ReplayResampleEvery); replay=false is the all-detailed
// baseline the benchmark compares against.
func RunTransformerReplay(workers, seqs, seqLen, iters, resampleEvery int, replay bool) (*TransformerReplayResult, error) {
	cfg := DefaultTransformerConfig()
	if seqs < 1 {
		seqs = 1
	}
	if iters < 1 {
		iters = 1
	}
	batch := transformerBatch(seqs, seqLen, cfg.Vocab)

	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	tcfg := timing.GTX1050()
	tcfg.ReplayEnabled = replay
	tcfg.ReplayResampleEvery = resampleEvery
	eng, err := timing.New(tcfg, timing.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	enc, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		return nil, err
	}

	// Everything live now is model state that survives across iterations
	// (weights, embedding tables); anything allocated past this point is
	// iteration-transient and reclaimed below.
	baseline := map[uint64]bool{}
	for _, a := range dev.Ctx.Alloc.LiveAllocations() {
		baseline[a] = true
	}

	res := &TransformerReplayResult{
		Config: cfg, Seqs: seqs, SeqLen: seqLen, Iters: iters, Replay: replay,
	}
	start := eng.Cycle()
	var first [][]float32
	for it := 0; it < iters; it++ {
		iterStart := eng.Cycle()
		outs, err := enc.ForwardBatch(batch, true)
		if err != nil {
			return nil, err
		}
		if it == 0 {
			res.FirstIterCycles = eng.Cycle() - iterStart
			first = outs
			for i, ids := range batch {
				want, _ := enc.ForwardCPU(ids)
				for j := range want {
					if d := math.Abs(float64(outs[i][j] - want[j])); d > res.MaxAbsDiff {
						res.MaxAbsDiff = d
					}
				}
			}
		} else {
			// replay memoizes timing, not semantics: repeated iterations
			// must be bit-equal to the detailed first one
			for i := range outs {
				for j := range outs[i] {
					if outs[i][j] != first[i][j] {
						return nil, fmt.Errorf("core: replay iteration %d output diverged at seq %d elem %d", it+1, i, j)
					}
				}
			}
		}
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			if !baseline[a] {
				if err := dev.Ctx.Free(a); err != nil {
					return nil, err
				}
			}
		}
	}
	res.TotalCycles = eng.Cycle() - start

	st := eng.Stats()
	res.ReplayHits = st.ReplayHits
	res.ReplayMisses = st.ReplayMisses
	res.ReplayResamples = st.ReplayResamples
	res.ReplayedCycles = st.ReplayedCycles
	res.DetailedKernelCycles = st.DetailedKernelCycles
	res.ReplayDriftCycles = st.ReplayDriftCycles
	res.ReplayMemoApplied = st.ReplayMemoApplied
	res.Coverage = st.ReplayCoverage()

	log := dev.Ctx.KernelStatsLog()
	res.Launches = len(log)
	byName := map[string]*TransformerReplayKernelAgg{}
	var names []string
	for _, k := range log {
		a := byName[k.Name]
		if a == nil {
			a = &TransformerReplayKernelAgg{Name: k.Name}
			byName[k.Name] = a
			names = append(names, k.Name)
		}
		a.Launches++
		a.Cycles += k.Cycles
		if k.Replayed {
			a.Replayed++
			a.ReplayedCycles += k.Cycles
		}
	}
	sort.Strings(names)
	for _, n := range names {
		res.PerKernel = append(res.PerKernel, *byName[n])
	}
	return res, nil
}
