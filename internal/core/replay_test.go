package core

import (
	"testing"
)

// TestRunTransformerReplay exercises the repeated-batch driver in hybrid
// mode end to end: the first iteration misses and later iterations hit
// (the free-delta between iterations restores allocator state, so
// re-launches build identical param images), outputs stay bit-equal to
// the detailed first iteration (checked inside the driver), and the
// per-kernel aggregation splits out the replayed launches.
func TestRunTransformerReplay(t *testing.T) {
	const iters = 3
	res, err := RunTransformerReplay(1, 2, 8, iters, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Launches / iters
	if res.Launches != perIter*iters {
		t.Errorf("launch count %d not divisible by %d iterations", res.Launches, iters)
	}
	if got, want := res.ReplayMisses, uint64(perIter); got != want {
		t.Errorf("ReplayMisses = %d, want %d (first iteration only)", got, want)
	}
	if got, want := res.ReplayHits, uint64(perIter*(iters-1)); got != want {
		t.Errorf("ReplayHits = %d, want %d (every later launch)", got, want)
	}
	if want := float64(iters-1) / float64(iters); res.Coverage < want-1e-9 {
		t.Errorf("Coverage = %v, want %v", res.Coverage, want)
	}
	// iteration 2 captures each kernel's functional memo while
	// executing; iteration 3 onward must ride the write-set fast path
	// (the batch is bit-repeatable, so every read-set validates)
	if got, want := res.ReplayMemoApplied, uint64(perIter*(iters-2)); got != want {
		t.Errorf("ReplayMemoApplied = %d, want %d", got, want)
	}
	if res.MaxAbsDiff > 1e-4 {
		t.Errorf("MaxAbsDiff vs CPU oracle = %v", res.MaxAbsDiff)
	}
	for _, k := range res.PerKernel {
		if want := k.Launches * (iters - 1) / iters; k.Replayed != want {
			t.Errorf("kernel %s: Replayed = %d, want %d of %d launches", k.Name, k.Replayed, want, k.Launches)
		}
	}

	det, err := RunTransformerReplay(1, 2, 8, iters, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if det.ReplayHits != 0 || det.ReplayMisses != 0 || det.Coverage != 0 {
		t.Errorf("detailed run counted replay activity: %+v", det)
	}
	// cold caches make the detailed baseline's first iteration identical
	if res.FirstIterCycles != det.FirstIterCycles {
		t.Errorf("first (detailed) iteration diverged: hybrid %d vs detailed %d cycles",
			res.FirstIterCycles, det.FirstIterCycles)
	}
}

// BenchmarkTransformerReplay measures the wall-clock win of hybrid
// replay on the repeated-kernel transformer batch: `detailed` simulates
// every iteration cycle by cycle, `hybrid` simulates the first and
// replays the rest. BENCH_6.json records the ratio (the issue's
// acceptance floor is 5x).
func BenchmarkTransformerReplay(b *testing.B) {
	const (
		seqs, seqLen = 4, 12
		iters        = 10
	)
	for _, mode := range []struct {
		name   string
		replay bool
	}{{"detailed", false}, {"hybrid", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunTransformerReplay(1, seqs, seqLen, iters, 0, mode.replay)
				if err != nil {
					b.Fatal(err)
				}
				if mode.replay && res.Coverage == 0 {
					b.Fatal("hybrid run never hit the replay cache")
				}
				b.ReportMetric(res.Coverage, "coverage")
			}
		})
	}
}
