package core

import (
	"fmt"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
)

// stridedSaxpyPTX is the memory-bound probe kernel: y[i*stride] +=
// x[i*stride]. With stride 1 it is a perfectly coalesced streaming sweep
// (one 128B sector per warp per array); with stride = RowBytes*NumBanks/4
// floats every lane lands in a different row of the *same* DRAM bank of
// the *same* partition — the paper's §V-B bank-camping pathology.
const stridedSaxpyPTX = `
.version 6.0
.target sm_61
.address_size 64

.visible .entry strided_saxpy(
	.param .u64 pX,
	.param .u64 pY,
	.param .u32 pStride,
	.param .u32 pN
)
{
	.reg .pred %p<2>;
	.reg .f32 %f<4>;
	.reg .b32 %r<8>;
	.reg .b64 %rd<6>;

	ld.param.u64 %rd1, [pX];
	ld.param.u64 %rd2, [pY];
	ld.param.u32 %r1, [pStride];
	ld.param.u32 %r2, [pN];
	mov.u32 %r3, %ctaid.x;
	mov.u32 %r4, %ntid.x;
	mov.u32 %r5, %tid.x;
	mad.lo.s32 %r6, %r3, %r4, %r5;
	setp.ge.u32 %p1, %r6, %r2;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	cvta.to.global.u64 %rd2, %rd2;
	mul.lo.s32 %r7, %r6, %r1;
	mul.wide.u32 %rd3, %r7, 4;
	add.s64 %rd4, %rd1, %rd3;
	add.s64 %rd5, %rd2, %rd3;
	ld.global.f32 %f1, [%rd4];
	ld.global.f32 %f2, [%rd5];
	add.f32 %f3, %f1, %f2;
	st.global.f32 [%rd5], %f3;
DONE:
	ret;
}
`

// StridedRunResult is one strided_saxpy run on a fresh engine.
type StridedRunResult struct {
	Engine *timing.Engine
	Kernel cudart.KernelStats
	Cycles uint64
}

// CampingStrideFloats returns the float32 stride that makes consecutive
// threads camp on one DRAM bank of one partition under cfg: every access
// lands RowBytes*NumBanks bytes apart, i.e. the same bank, a new row each
// time (and the same L2 partition, since the stride is a multiple of the
// L2 line size times the partition count).
func CampingStrideFloats(cfg timing.Config) int {
	return cfg.DRAM.RowBytes * cfg.DRAM.NumBanks / 4
}

// RunStridedSaxpy launches strided_saxpy once on a fresh context and
// engine: `ctas` blocks of `threads` threads, each thread touching
// x[i*stride] and y[i*stride]. Occupancy (ctas*threads in flight) is the
// load knob; stride is the locality knob.
func RunStridedSaxpy(gpu GPU, workers, ctas, threads, stride int) (*StridedRunResult, error) {
	cfg, err := gpu.TimingConfig()
	if err != nil {
		return nil, err
	}
	ctx := cudart.NewContext(exec.BugSet{})
	eng, err := timing.New(cfg, timing.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	ctx.SetRunner(timing.Runner{E: eng})
	if _, err := ctx.RegisterModule(stridedSaxpyPTX); err != nil {
		return nil, err
	}
	n := ctas * threads
	floats := n * stride
	init := make([]float32, floats)
	for i := range init {
		init[i] = float32(i%17) * 0.25
	}
	px, err := ctx.Malloc(uint64(4 * floats))
	if err != nil {
		return nil, err
	}
	ctx.MemcpyF32HtoD(px, init)
	py, err := ctx.Malloc(uint64(4 * floats))
	if err != nil {
		return nil, err
	}
	ctx.MemcpyF32HtoD(py, init)
	p := cudart.NewParams().Ptr(px).Ptr(py).U32(uint32(stride)).U32(uint32(n))
	st, err := ctx.Launch("strided_saxpy", exec.Dim3{X: ctas}, exec.Dim3{X: threads}, p, 0)
	if err != nil {
		return nil, err
	}
	return &StridedRunResult{Engine: eng, Kernel: st, Cycles: st.Cycles}, nil
}

// MemBoundPoint is one occupancy level of the membound sweep.
type MemBoundPoint struct {
	CTAs          int
	Cycles        uint64
	AvgSegLatency float64 // mean issue-to-response segment latency
	IngressStalls uint64
	Kernel        cudart.KernelStats
}

// MemBoundResult is the occupancy sweep of the streaming strided_saxpy
// workload: rising AvgSegLatency with occupancy is the bandwidth-aware
// hierarchy responding to load (a fixed-latency memory model reports the
// same latency at every point).
type MemBoundResult struct {
	Threads int
	Stride  int
	Points  []MemBoundPoint
}

// RunMemBound sweeps the streaming kernel across CTA counts, one fresh
// engine per point so the latency numbers are not polluted by warm caches
// from the previous level.
func RunMemBound(gpu GPU, workers, threads, stride int, ctas []int) (*MemBoundResult, error) {
	res := &MemBoundResult{Threads: threads, Stride: stride}
	for _, n := range ctas {
		r, err := RunStridedSaxpy(gpu, workers, n, threads, stride)
		if err != nil {
			return nil, fmt.Errorf("membound ctas=%d: %w", n, err)
		}
		st := r.Engine.Stats()
		res.Points = append(res.Points, MemBoundPoint{
			CTAs:          n,
			Cycles:        r.Cycles,
			AvgSegLatency: st.AvgSegmentLatency(),
			IngressStalls: st.IngressStallCycles,
			Kernel:        r.Kernel,
		})
	}
	return res, nil
}
