package core

// The autoregressive-decode sample: the shared driver behind
// `cmd/gpgpusim -workload decode` and BenchmarkDecodeThroughput. Each
// sequence's greedy decode is one long chain of tiny dependent kernels
// (per step and layer: three projections, cache appends, the cached
// attention GEMVs, causal softmax, FF, then logit GEMV + argmax) — the
// many-small-launch population the paper identifies as the cycle-level
// simulator's worst case. RunDecodeSample runs the chains twice, stream-
// overlapped and serialized, and verifies both token-for-token against
// GenerateCPU; RunDecodeReplay repeats identical generate batches on one
// engine so the replay cache can memoize the steady-state decode steps.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// DecodeSampleResult summarises the concurrent + serialized decode runs.
type DecodeSampleResult struct {
	Config           torch.TransformerConfig
	Seqs             int
	PromptLen        int
	NewTokens        int
	Launches         int
	ConcurrentCycles uint64
	SerializedCycles uint64
	TotalInstrs      uint64
	Tokens           [][]int32 // generated ids, oracle-verified
	PerKernel        []TransformerKernelAgg
}

// Speedup returns the serialized/concurrent cycle ratio.
func (r *DecodeSampleResult) Speedup() float64 {
	return float64(r.SerializedCycles) / float64(r.ConcurrentCycles)
}

// TokensPerMcycle returns generated tokens per million modelled cycles
// of the concurrent run — the decode throughput metric.
func (r *DecodeSampleResult) TokensPerMcycle() float64 {
	return float64(r.Seqs*r.NewTokens) / (float64(r.ConcurrentCycles) / 1e6)
}

// decodePrompts builds `seqs` deterministic prompts of promptLen tokens.
func decodePrompts(seqs, promptLen, vocab int) [][]int32 {
	return transformerBatch(seqs, promptLen, vocab)
}

// RunDecodeSample greedy-decodes `seqs` prompts of `promptLen` tokens
// for `newTokens` tokens each under the GTX 1050 model with `workers`
// engine worker goroutines, once stream-overlapped and once serialized,
// checking tokens against the GenerateCPU oracle and each other.
func RunDecodeSample(workers, seqs, promptLen, newTokens int) (*DecodeSampleResult, error) {
	cfg := DefaultTransformerConfig()
	if seqs < 1 {
		seqs = 1
	}
	if promptLen < 1 {
		promptLen = 1
	}
	if newTokens < 1 {
		newTokens = 1
	}
	if promptLen+newTokens-1 > cfg.MaxSeq {
		return nil, fmt.Errorf("core: prompt %d + %d generated tokens exceed MaxSeq %d",
			promptLen, newTokens, cfg.MaxSeq)
	}
	prompts := decodePrompts(seqs, promptLen, cfg.Vocab)

	run := func(concurrent bool) (uint64, [][]int32, []cudart.KernelStats, *torch.TransformerDecoder, error) {
		dev, err := torch.NewDevice(exec.BugSet{})
		if err != nil {
			return 0, nil, nil, nil, err
		}
		eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(workers))
		if err != nil {
			return 0, nil, nil, nil, err
		}
		dev.Ctx.SetRunner(timing.Runner{E: eng})
		dec, err := torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(7)), cfg)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		start := eng.Cycle()
		outs, err := dec.GenerateBatch(prompts, newTokens, concurrent)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return eng.Cycle() - start, outs, dev.Ctx.KernelStatsLog(), dec, nil
	}

	conc, outs, log, dec, err := run(true)
	if err != nil {
		return nil, err
	}
	serial, serialOuts, _, _, err := run(false)
	if err != nil {
		return nil, err
	}

	res := &DecodeSampleResult{
		Config: cfg, Seqs: seqs, PromptLen: promptLen, NewTokens: newTokens,
		Launches: len(log), ConcurrentCycles: conc, SerializedCycles: serial,
		Tokens: outs,
	}
	// self-check: simulated tokens vs the GenerateCPU oracle, token for
	// token, and the stream-overlapped run vs the serialized run
	for i, p := range prompts {
		want, err := dec.GenerateCPU(p, newTokens)
		if err != nil {
			return nil, err
		}
		for j := range want {
			if outs[i][j] != want[j] {
				return nil, fmt.Errorf("core: decode seq %d token %d: device %d, oracle %d",
					i, j, outs[i][j], want[j])
			}
			if outs[i][j] != serialOuts[i][j] {
				return nil, fmt.Errorf("core: stream vs serial decode diverged at seq %d token %d", i, j)
			}
		}
	}

	byName := map[string]*TransformerKernelAgg{}
	var names []string
	for _, k := range log {
		a := byName[k.Name]
		if a == nil {
			a = &TransformerKernelAgg{Name: k.Name}
			byName[k.Name] = a
			names = append(names, k.Name)
		}
		a.Launches++
		a.WarpInstrs += k.WarpInstrs
		a.Cycles += k.Cycles
		res.TotalInstrs += k.WarpInstrs
	}
	sort.Strings(names)
	for _, n := range names {
		res.PerKernel = append(res.PerKernel, *byName[n])
	}
	return res, nil
}

// DecodeReplayResult summarises a repeated decode run on one engine.
type DecodeReplayResult struct {
	Config    torch.TransformerConfig
	Seqs      int
	PromptLen int
	NewTokens int
	Iters     int
	Replay    bool

	Launches        int
	FirstIterCycles uint64
	TotalCycles     uint64

	ReplayHits           uint64
	ReplayMisses         uint64
	ReplayResamples      uint64
	ReplayedCycles       uint64
	DetailedKernelCycles uint64
	ReplayDriftCycles    uint64
	ReplayMemoApplied    uint64
	Coverage             float64

	Tokens    [][]int32 // first iteration's generated ids, oracle-verified
	PerKernel []TransformerReplayKernelAgg
}

// TokensPerMcycle returns generated tokens per million modelled cycles
// across all iterations.
func (r *DecodeReplayResult) TokensPerMcycle() float64 {
	return float64(r.Seqs*r.NewTokens*r.Iters) / (float64(r.TotalCycles) / 1e6)
}

// RunDecodeReplay runs `iters` identical stream-overlapped generate
// batches on a single GTX 1050 engine. Sessions and activation tensors
// are freed after every iteration, so the first-fit allocator re-issues
// identical addresses and — with replay=true — the steady-state decode
// steps retire from the replay cache. The first iteration is verified
// token-for-token against GenerateCPU; later iterations must reproduce
// it bit-exactly (replay memoizes timing, not semantics).
func RunDecodeReplay(workers, seqs, promptLen, newTokens, iters, resampleEvery int, replay bool) (*DecodeReplayResult, error) {
	cfg := DefaultTransformerConfig()
	if seqs < 1 {
		seqs = 1
	}
	if promptLen < 1 {
		promptLen = 1
	}
	if newTokens < 1 {
		newTokens = 1
	}
	if iters < 1 {
		iters = 1
	}
	if promptLen+newTokens-1 > cfg.MaxSeq {
		return nil, fmt.Errorf("core: prompt %d + %d generated tokens exceed MaxSeq %d",
			promptLen, newTokens, cfg.MaxSeq)
	}
	prompts := decodePrompts(seqs, promptLen, cfg.Vocab)

	dev, err := torch.NewDevice(exec.BugSet{})
	if err != nil {
		return nil, err
	}
	tcfg := timing.GTX1050()
	tcfg.ReplayEnabled = replay
	tcfg.ReplayResampleEvery = resampleEvery
	eng, err := timing.New(tcfg, timing.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	dev.Ctx.SetRunner(timing.Runner{E: eng})
	dec, err := torch.NewTransformerDecoder(dev, rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		return nil, err
	}

	baseline := map[uint64]bool{}
	for _, a := range dev.Ctx.Alloc.LiveAllocations() {
		baseline[a] = true
	}

	res := &DecodeReplayResult{
		Config: cfg, Seqs: seqs, PromptLen: promptLen, NewTokens: newTokens,
		Iters: iters, Replay: replay,
	}
	start := eng.Cycle()
	for it := 0; it < iters; it++ {
		iterStart := eng.Cycle()
		outs, err := dec.GenerateBatch(prompts, newTokens, true)
		if err != nil {
			return nil, err
		}
		if it == 0 {
			res.FirstIterCycles = eng.Cycle() - iterStart
			res.Tokens = outs
			for i, p := range prompts {
				want, err := dec.GenerateCPU(p, newTokens)
				if err != nil {
					return nil, err
				}
				for j := range want {
					if outs[i][j] != want[j] {
						return nil, fmt.Errorf("core: decode seq %d token %d: device %d, oracle %d",
							i, j, outs[i][j], want[j])
					}
				}
			}
		} else {
			for i := range outs {
				for j := range outs[i] {
					if outs[i][j] != res.Tokens[i][j] {
						return nil, fmt.Errorf("core: replay iteration %d tokens diverged at seq %d token %d", it+1, i, j)
					}
				}
			}
		}
		for _, a := range dev.Ctx.Alloc.LiveAllocations() {
			if !baseline[a] {
				if err := dev.Ctx.Free(a); err != nil {
					return nil, err
				}
			}
		}
	}
	res.TotalCycles = eng.Cycle() - start

	st := eng.Stats()
	res.ReplayHits = st.ReplayHits
	res.ReplayMisses = st.ReplayMisses
	res.ReplayResamples = st.ReplayResamples
	res.ReplayedCycles = st.ReplayedCycles
	res.DetailedKernelCycles = st.DetailedKernelCycles
	res.ReplayDriftCycles = st.ReplayDriftCycles
	res.ReplayMemoApplied = st.ReplayMemoApplied
	res.Coverage = st.ReplayCoverage()

	log := dev.Ctx.KernelStatsLog()
	res.Launches = len(log)
	byName := map[string]*TransformerReplayKernelAgg{}
	var names []string
	for _, k := range log {
		a := byName[k.Name]
		if a == nil {
			a = &TransformerReplayKernelAgg{Name: k.Name}
			byName[k.Name] = a
			names = append(names, k.Name)
		}
		a.Launches++
		a.Cycles += k.Cycles
		if k.Replayed {
			a.Replayed++
			a.ReplayedCycles += k.Cycles
		}
	}
	sort.Strings(names)
	for _, n := range names {
		res.PerKernel = append(res.PerKernel, *byName[n])
	}
	return res, nil
}
