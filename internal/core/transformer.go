package core

// The transformer-inference sample: the shared driver behind
// `cmd/gpgpusim -workload transformer` and examples/transformer_inference.
// It runs a small encoder forward batch twice under the GTX 1050 model —
// once with every sequence's kernel chain on its own CUDA stream, once
// serialized on the default stream — verifies both against the CPU
// oracle and each other, and aggregates the per-kernel statistics.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/timing"
	"repro/internal/torch"
)

// DefaultTransformerConfig sizes the sample encoder: small enough for
// the detailed model to run in seconds, big enough that every kernel
// family appears.
func DefaultTransformerConfig() torch.TransformerConfig {
	return torch.TransformerConfig{
		Layers: 2, Heads: 4, DModel: 32, FF: 64, Vocab: 61, MaxSeq: 16,
	}
}

// TransformerKernelAgg aggregates one kernel name's launches.
type TransformerKernelAgg struct {
	Name       string
	Launches   int
	WarpInstrs uint64
	Cycles     uint64
}

// TransformerSampleResult summarises the concurrent + serialized runs.
type TransformerSampleResult struct {
	Config           torch.TransformerConfig
	Seqs             int
	SeqLen           int
	Launches         int
	ConcurrentCycles uint64
	SerializedCycles uint64
	TotalInstrs      uint64
	MaxAbsDiff       float64 // |simulated - ForwardCPU oracle|
	PerKernel        []TransformerKernelAgg
}

// Speedup returns the serialized/concurrent cycle ratio.
func (r *TransformerSampleResult) Speedup() float64 {
	return float64(r.SerializedCycles) / float64(r.ConcurrentCycles)
}

// IPC returns warp instructions per cycle of the concurrent run.
func (r *TransformerSampleResult) IPC() float64 {
	return float64(r.TotalInstrs) / float64(r.ConcurrentCycles)
}

// transformerBatch builds `seqs` deterministic token sequences.
func transformerBatch(seqs, seqLen, vocab int) [][]int32 {
	batch := make([][]int32, seqs)
	for i := range batch {
		ids := make([]int32, seqLen)
		for j := range ids {
			ids[j] = int32((i*13 + j*5) % vocab)
		}
		batch[i] = ids
	}
	return batch
}

// RunTransformerSample executes the sample with `seqs` sequences of
// `seqLen` tokens and `workers` engine worker goroutines.
func RunTransformerSample(workers, seqs, seqLen int) (*TransformerSampleResult, error) {
	cfg := DefaultTransformerConfig()
	if seqs < 1 {
		seqs = 1
	}
	batch := transformerBatch(seqs, seqLen, cfg.Vocab)

	run := func(concurrent bool) (uint64, [][]float32, []cudart.KernelStats, *torch.TransformerEncoder, error) {
		dev, err := torch.NewDevice(exec.BugSet{})
		if err != nil {
			return 0, nil, nil, nil, err
		}
		eng, err := timing.New(timing.GTX1050(), timing.WithWorkers(workers))
		if err != nil {
			return 0, nil, nil, nil, err
		}
		dev.Ctx.SetRunner(timing.Runner{E: eng})
		enc, err := torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(7)), cfg)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		start := eng.Cycle()
		outs, err := enc.ForwardBatch(batch, concurrent)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return eng.Cycle() - start, outs, dev.Ctx.KernelStatsLog(), enc, nil
	}

	conc, outs, log, enc, err := run(true)
	if err != nil {
		return nil, err
	}
	serial, serialOuts, _, _, err := run(false)
	if err != nil {
		return nil, err
	}

	res := &TransformerSampleResult{
		Config: cfg, Seqs: seqs, SeqLen: seqLen, Launches: len(log),
		ConcurrentCycles: conc, SerializedCycles: serial,
	}
	// self-check: simulated output vs the ForwardCPU oracle, and the
	// stream-overlapped run vs the serialized run (must be identical)
	for i, ids := range batch {
		want, _ := enc.ForwardCPU(ids)
		for j := range want {
			if d := math.Abs(float64(outs[i][j] - want[j])); d > res.MaxAbsDiff {
				res.MaxAbsDiff = d
			}
			if outs[i][j] != serialOuts[i][j] {
				return nil, fmt.Errorf("core: stream vs serial output diverged at seq %d elem %d", i, j)
			}
		}
	}

	byName := map[string]*TransformerKernelAgg{}
	var names []string
	for _, k := range log {
		a := byName[k.Name]
		if a == nil {
			a = &TransformerKernelAgg{Name: k.Name}
			byName[k.Name] = a
			names = append(names, k.Name)
		}
		a.Launches++
		a.WarpInstrs += k.WarpInstrs
		a.Cycles += k.Cycles
		res.TotalInstrs += k.WarpInstrs
	}
	sort.Strings(names)
	for _, n := range names {
		res.PerKernel = append(res.PerKernel, *byName[n])
	}
	return res, nil
}
