// Package cache implements the set-associative cache model used for the
// per-SM L1 data caches and the per-memory-partition L2 slices of the
// timing model, with LRU replacement and MSHR-based miss merging.
package cache

import "fmt"

// Config sizes a cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	MSHRs     int // distinct outstanding miss lines
	WriteBack bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LineBytes == 0 || c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line %d x assoc %d",
			c.SizeBytes, c.LineBytes, c.Assoc)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// AccessResult describes the outcome of a cache access.
type AccessResult int

// Access outcomes.
const (
	Hit AccessResult = iota
	Miss
	// MissMerged means the line is already being fetched; the access
	// piggybacks on an existing MSHR and no new memory request is needed.
	MissMerged
	// ReservationFail means all MSHRs are busy; the access must be
	// retried later (a structural stall).
	ReservationFail
)

// Stats accumulates cache statistics.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Merged     uint64
	ResFails   uint64
	Writebacks uint64
}

// Cache is a set-associative cache with MSHRs.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	tick  uint64
	mshrs map[uint64]int // line address -> merged count
	Stats Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets, mshrs: make(map[uint64]int)}, nil
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	return int(lineAddr % uint64(c.nsets)), lineAddr / uint64(c.nsets)
}

// LineAddr returns the line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// Access performs a read (or write-allocate on write-back caches) lookup.
// On Miss, the caller must fetch the line and later call Fill; writeback
// of an evicted dirty line is signalled by the second return value.
func (c *Cache) Access(addr uint64, write bool) (AccessResult, bool) {
	c.tick++
	c.Stats.Accesses++
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			if write {
				if c.cfg.WriteBack {
					l.dirty = true
				}
			}
			c.Stats.Hits++
			return Hit, false
		}
	}
	// Write-through no-allocate for non-write-back caches: a write miss
	// goes straight to the next level without reserving an MSHR.
	if write && !c.cfg.WriteBack {
		c.Stats.Misses++
		return Miss, false
	}
	lineAddr := c.LineAddr(addr)
	if _, pending := c.mshrs[lineAddr]; pending {
		c.mshrs[lineAddr]++
		c.Stats.Merged++
		return MissMerged, false
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.Stats.ResFails++
		return ReservationFail, false
	}
	c.mshrs[lineAddr] = 1
	c.Stats.Misses++
	return Miss, false
}

// Fill installs a fetched line and clears its MSHR. It reports whether an
// evicted dirty line must be written back and, when so, the victim line's
// address — the memory system turns that into real writeback traffic on
// the DRAM channel instead of letting the eviction silently vanish.
func (c *Cache) Fill(addr uint64, write bool) (writeback bool, victimAddr uint64) {
	lineAddr := c.LineAddr(addr)
	delete(c.mshrs, lineAddr)
	set, tag := c.index(addr)
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if !l.valid {
			victim = i
			oldest = 0
			break
		}
		if l.lru < oldest {
			oldest = l.lru
			victim = i
		}
	}
	v := &c.sets[set][victim]
	writeback = v.valid && v.dirty
	if writeback {
		c.Stats.Writebacks++
		victimAddr = (v.tag*uint64(c.nsets) + uint64(set)) * uint64(c.cfg.LineBytes)
	}
	c.tick++
	*v = line{valid: true, tag: tag, lru: c.tick, dirty: write && c.cfg.WriteBack}
	return writeback, victimAddr
}

// PendingMisses returns the number of occupied MSHRs.
func (c *Cache) PendingMisses() int { return len(c.mshrs) }

// Reset clears all contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.mshrs = make(map[uint64]int)
	c.Stats = Stats{}
	c.tick = 0
}
