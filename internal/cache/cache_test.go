package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCfg() Config {
	return Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2, MSHRs: 4}
}

func TestHitAfterFill(t *testing.T) {
	c := mustCache(t, smallCfg())
	if r, _ := c.Access(0x1000, false); r != Miss {
		t.Fatalf("cold access = %v, want Miss", r)
	}
	c.Fill(0x1000, false)
	if r, _ := c.Access(0x1000, false); r != Hit {
		t.Fatalf("post-fill access = %v, want Hit", r)
	}
	// same line, different offset
	if r, _ := c.Access(0x1020, false); r != Hit {
		t.Fatalf("same-line access = %v, want Hit", r)
	}
}

func TestMSHRMergeAndFail(t *testing.T) {
	c := mustCache(t, smallCfg())
	if r, _ := c.Access(0x1000, false); r != Miss {
		t.Fatal("want Miss")
	}
	if r, _ := c.Access(0x1000, false); r != MissMerged {
		t.Fatal("second miss to same line must merge")
	}
	// exhaust MSHRs with distinct lines
	c.Access(0x2000, false)
	c.Access(0x3000, false)
	c.Access(0x4000, false)
	if r, _ := c.Access(0x5000, false); r != ReservationFail {
		t.Fatalf("5th outstanding line = %v, want ReservationFail", r)
	}
	c.Fill(0x1000, false)
	if r, _ := c.Access(0x5000, false); r != Miss {
		t.Fatalf("after fill = %v, want Miss (MSHR freed)", r)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, smallCfg()) // 8 sets, 2 ways
	// three lines mapping to the same set (stride = nsets*line = 512)
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Access(a, false)
	c.Fill(a, false)
	c.Access(b, false)
	c.Fill(b, false)
	c.Access(a, false) // touch a so b is LRU
	c.Access(d, false)
	c.Fill(d, false) // evicts b
	if r, _ := c.Access(a, false); r != Hit {
		t.Fatal("a should have survived")
	}
	if r, _ := c.Access(b, false); r == Hit {
		t.Fatal("b should have been evicted")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	cfg := smallCfg()
	cfg.WriteBack = true
	c := mustCache(t, cfg)
	c.Access(0x0000, true)
	wb, _ := c.Fill(0x0000, true) // dirty line installed
	if wb {
		t.Fatal("filling into an empty way must not write back")
	}
	c.Access(0x0200, false)
	c.Fill(0x0200, false)
	c.Access(0x0400, false)
	wb, victim := c.Fill(0x0400, false)
	if !wb {
		t.Fatal("evicting the dirty line must signal a writeback")
	}
	if victim != 0x0000 {
		t.Fatalf("writeback victim address = %#x, want %#x (the dirty line)", victim, 0x0000)
	}
}

// TestWritebackVictimAddress pins the victim-address reconstruction from
// (tag, set) across several sets and offsets: the address handed to the
// DRAM writeback path must be the line base of the evicted line.
func TestWritebackVictimAddress(t *testing.T) {
	cfg := smallCfg() // 8 sets x 64B lines x 2 ways
	cfg.WriteBack = true
	for _, base := range []uint64{0x00C0, 0x1040, 0x7FC0} {
		c := mustCache(t, cfg)
		c.Access(base+7, true) // dirty, unaligned offset inside the line
		c.Fill(base+7, true)
		// two more lines in the same set evict the dirty one (assoc 2)
		for i := uint64(1); i <= 2; i++ {
			c.Access(base+i*512, false)
			wb, victim := c.Fill(base+i*512, false)
			if i == 2 {
				if !wb {
					t.Fatalf("base %#x: dirty line not evicted", base)
				}
				if want := base &^ 63; victim != want {
					t.Fatalf("base %#x: victim = %#x, want line base %#x", base, victim, want)
				}
			}
		}
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := mustCache(t, smallCfg())
	if r, _ := c.Access(0x1000, true); r != Miss {
		t.Fatal("write miss expected")
	}
	if got := c.PendingMisses(); got != 0 {
		t.Fatalf("write-through miss must not reserve an MSHR, got %d", got)
	}
}

// Property: after Fill(addr), Access(addr) hits, for arbitrary addresses.
func TestFillThenHitProperty(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, LineBytes: 128, Assoc: 4, MSHRs: 8})
	f := func(raw uint32) bool {
		addr := uint64(raw)
		r, _ := c.Access(addr, false)
		if r == Miss {
			c.Fill(addr, false)
		}
		if r == ReservationFail {
			return true // structural stall: nothing to assert
		}
		r2, _ := c.Access(addr, false)
		return r2 == Hit || r2 == MissMerged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{SizeBytes: 1000, LineBytes: 64, Assoc: 3}); err == nil {
		t.Fatal("non-divisible geometry must be rejected")
	}
}

func TestStatsAndReset(t *testing.T) {
	c := mustCache(t, smallCfg())
	c.Access(0x0, false)
	c.Fill(0x0, false)
	c.Access(0x0, false)
	st := c.Stats
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.Reset()
	if c.Stats.Accesses != 0 || c.PendingMisses() != 0 {
		t.Fatal("reset incomplete")
	}
	if r, _ := c.Access(0x0, false); r != Miss {
		t.Fatal("contents must be cleared by reset")
	}
}
