package debug

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/cudart"
	"repro/internal/exec"
	"repro/internal/ptx"
)

// logBase is where the instruction log lives during replay — far above
// the allocator range so restored buffers can keep their original
// addresses (the captured pointer parameters remain valid verbatim).
const logBase = uint64(0x0000_0100_0000_0000)

const entryBytes = 16 // [0:4) pc, [8:16) value

// dbgParam is the appended log-pointer parameter (paper Fig. 3: "the
// results of each executed instruction that writes a value to a register
// is saved into a new global array in GPU memory").
const dbgParam = "_dbg_log"

// InstrumentKernel re-emits a kernel as PTX text with a (pc, value) store
// appended after every register-writing instruction — the analog of the
// paper's LLVM-based PTX instrumentation tool. The log pointer arrives
// through an extra parameter; each thread owns `entries` slots.
func InstrumentKernel(k *ptx.Kernel, entries int) string {
	var b strings.Builder
	b.WriteString(".version 6.0\n.target sm_61\n.address_size 64\n\n")
	fmt.Fprintf(&b, ".visible .entry %s(\n", k.Name)
	for _, p := range k.Params {
		fmt.Fprintf(&b, "\t.param .%s %s,\n", p.Type, p.Name)
	}
	fmt.Fprintf(&b, "\t.param .u64 %s\n)\n{\n", dbgParam)

	// register declarations: original slots grouped by type + debug regs
	byType := map[ptx.Type][]string{}
	for slot := 0; slot < k.NumSlots; slot++ {
		t := k.RegType(slot)
		byType[t] = append(byType[t], k.RegName(slot))
	}
	for t := ptx.Type(1); t <= ptx.Pred; t++ {
		if names := byType[t]; len(names) > 0 {
			fmt.Fprintf(&b, "\t.reg .%s %s;\n", t, strings.Join(names, ", "))
		}
	}
	b.WriteString("\t.reg .u64 %dbgcur, %dbgend, %dbgw;\n")
	b.WriteString("\t.reg .b32 %dbgt1, %dbgt2, %dbgt3, %dbgt4;\n")
	b.WriteString("\t.reg .pred %dbgp;\n")
	for _, v := range k.SharedVars {
		fmt.Fprintf(&b, "\t.shared .align %d .b8 %s[%d];\n", v.Align, v.Name, v.Size)
	}
	for _, v := range k.LocalVars {
		fmt.Fprintf(&b, "\t.local .align %d .b8 %s[%d];\n", v.Align, v.Name, v.Size)
	}

	// prologue: per-thread log cursor = base + gtid*entries*entryBytes
	perThread := entries * entryBytes
	fmt.Fprintf(&b, `
	ld.param.u64 %%dbgcur, [%s];
	cvta.to.global.u64 %%dbgcur, %%dbgcur;
	mov.u32 %%dbgt1, %%ctaid.z;
	mov.u32 %%dbgt2, %%nctaid.y;
	mov.u32 %%dbgt3, %%ctaid.y;
	mad.lo.s32 %%dbgt1, %%dbgt1, %%dbgt2, %%dbgt3;
	mov.u32 %%dbgt2, %%nctaid.x;
	mov.u32 %%dbgt3, %%ctaid.x;
	mad.lo.s32 %%dbgt1, %%dbgt1, %%dbgt2, %%dbgt3;
	mov.u32 %%dbgt2, %%ntid.x;
	mov.u32 %%dbgt4, %%ntid.y;
	mul.lo.u32 %%dbgt2, %%dbgt2, %%dbgt4;
	mov.u32 %%dbgt4, %%ntid.z;
	mul.lo.u32 %%dbgt2, %%dbgt2, %%dbgt4;
	mul.lo.u32 %%dbgt1, %%dbgt1, %%dbgt2;
	mov.u32 %%dbgt3, %%tid.z;
	mov.u32 %%dbgt4, %%ntid.y;
	mul.lo.u32 %%dbgt3, %%dbgt3, %%dbgt4;
	mov.u32 %%dbgt4, %%tid.y;
	add.u32 %%dbgt3, %%dbgt3, %%dbgt4;
	mov.u32 %%dbgt4, %%ntid.x;
	mul.lo.u32 %%dbgt3, %%dbgt3, %%dbgt4;
	mov.u32 %%dbgt4, %%tid.x;
	add.u32 %%dbgt3, %%dbgt3, %%dbgt4;
	add.u32 %%dbgt1, %%dbgt1, %%dbgt3;
	mul.wide.u32 %%dbgw, %%dbgt1, %d;
	add.s64 %%dbgcur, %%dbgcur, %%dbgw;
	add.s64 %%dbgend, %%dbgcur, %d;
`, dbgParam, perThread, perThread)

	// body: labels, original instructions, instrumentation
	labelAt := map[int][]string{}
	for name, pc := range k.Labels {
		labelAt[pc] = append(labelAt[pc], name)
	}
	for pc := range k.Instrs {
		for _, l := range labelAt[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		in := &k.Instrs[pc]
		fmt.Fprintf(&b, "\t%s\n", ptx.FormatInstr(k, in))
		if !in.HasRegDst(k) {
			continue
		}
		var dstRegs []int
		d := &in.Dst[0]
		switch d.Kind {
		case ptx.OperandReg:
			dstRegs = append(dstRegs, d.Reg)
		case ptx.OperandVec:
			for i := range d.Elems {
				if d.Elems[i].Kind == ptx.OperandReg {
					dstRegs = append(dstRegs, d.Elems[i].Reg)
				}
			}
		}
		for _, slot := range dstRegs {
			t := k.RegType(slot)
			if t == ptx.Pred {
				continue
			}
			st := "b32"
			if t.Size() == 8 {
				st = "b64"
			} else if t.Size() == 2 {
				st = "b16"
			}
			fmt.Fprintf(&b, "\tsetp.lt.u64 %%dbgp, %%dbgcur, %%dbgend;\n")
			// pc is stored off by one so that 0 unambiguously means
			// "no entry was logged" (thread never reached this point).
			fmt.Fprintf(&b, "\t@%%dbgp st.global.u32 [%%dbgcur], %d;\n", pc+1)
			fmt.Fprintf(&b, "\t@%%dbgp st.global.%s [%%dbgcur+8], %s;\n", st, k.RegName(slot))
			fmt.Fprintf(&b, "\t@%%dbgp add.s64 %%dbgcur, %%dbgcur, %d;\n", entryBytes)
		}
	}
	for _, l := range labelAt[len(k.Instrs)] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	b.WriteString("\tret;\n}\n")
	return b.String()
}

// replayInstrumented runs the instrumented kernel against the captured
// launch state on a machine with the given bugs and returns the raw log.
func replayInstrumented(rec *cudart.LaunchRecord, modText string, entries int, bugs exec.BugSet) ([]byte, int, error) {
	ctx := cudart.NewContext(bugs)
	mod, err := ctx.RegisterModule(modText)
	if err != nil {
		return nil, 0, fmt.Errorf("instrumented module: %w", err)
	}
	// Restore every captured buffer at its original address; the pointer
	// parameters then remain valid verbatim.
	for base, data := range rec.Buffers {
		ctx.Mem.Write(base, data)
	}
	params := append([]byte(nil), rec.Params...)
	for len(params)%8 != 0 {
		params = append(params, 0)
	}
	var ptr [8]byte
	binary.LittleEndian.PutUint64(ptr[:], logBase)
	params = append(params, ptr[:]...)

	// Even if the kernel faults mid-execution (a legitimate manifestation
	// of an injected bug), the log written so far is still in device
	// memory and remains useful for bisection.
	_, launchErr := ctx.CuLaunchKernel(mod, rec.Kernel, rec.GridDim, rec.BlockDim, params, rec.Shared)
	threads := rec.GridDim.Count() * rec.BlockDim.Count()
	log := make([]byte, threads*entries*entryBytes)
	ctx.Mem.Read(logBase, log)
	_ = launchErr
	return log, threads, nil
}

// bisectInstruction implements step 3: find the first (entry, thread) at
// which the golden and suspect logs disagree.
func (t *Tool) bisectInstruction(rec *cudart.LaunchRecord, entries int) (pc int, raw string, thread int, gv, bv uint64, err error) {
	k, ok := rec.Module.Kernels[rec.Kernel]
	if !ok {
		return 0, "", 0, 0, 0, fmt.Errorf("kernel %q not in captured module", rec.Kernel)
	}
	modText := InstrumentKernel(k, entries)
	goldenLog, threads, err := replayInstrumented(rec, modText, entries, exec.BugSet{})
	if err != nil {
		return 0, "", 0, 0, 0, fmt.Errorf("golden replay: %w", err)
	}
	buggyLog, _, err := replayInstrumented(rec, modText, entries, t.Bugs)
	if err != nil {
		return 0, "", 0, 0, 0, fmt.Errorf("suspect replay: %w", err)
	}
	// Pass 1: the first *value* divergence at a matching pc is the faulty
	// instruction. Pass 2 (fallback): the first control divergence in a
	// thread whose suspect log is non-empty — threads that never ran in a
	// crashed suspect replay log all-zero entries and must not win.
	report := func(p int, th int, gval, bval uint64) (int, string, int, uint64, uint64, error) {
		rawText := ""
		if p >= 0 && p < len(k.Instrs) {
			rawText = k.Instrs[p].Raw
		}
		return p, rawText, th, gval, bval, nil
	}
	for e := 0; e < entries; e++ {
		for th := 0; th < threads; th++ {
			off := (th*entries + e) * entryBytes
			gpc := binary.LittleEndian.Uint32(goldenLog[off:])
			bpc := binary.LittleEndian.Uint32(buggyLog[off:])
			gval := binary.LittleEndian.Uint64(goldenLog[off+8:])
			bval := binary.LittleEndian.Uint64(buggyLog[off+8:])
			if gpc != 0 && gpc == bpc && gval != bval {
				return report(int(gpc)-1, th, gval, bval)
			}
		}
	}
	for e := 0; e < entries; e++ {
		for th := 0; th < threads; th++ {
			off := (th*entries + e) * entryBytes
			gpc := binary.LittleEndian.Uint32(goldenLog[off:])
			bpc := binary.LittleEndian.Uint32(buggyLog[off:])
			gval := binary.LittleEndian.Uint64(goldenLog[off+8:])
			bval := binary.LittleEndian.Uint64(buggyLog[off+8:])
			if (gpc != bpc) && bpc != 0 {
				return report(int(gpc)-1, th, gval, bval)
			}
		}
	}
	return -1, "", -1, 0, 0, fmt.Errorf("instrumented replays agree; no faulty instruction found (log too small?)")
}
