// Package debug implements the paper's functional-debug methodology
// (§III-D, Figs. 2-3) for localising incorrect instruction
// implementations in the simulator:
//
//  1. Differential coverage analysis: which instruction-implementation
//     paths does the failing workload exercise that the passing
//     regression suite does not?
//  2. API-call / kernel bisection: re-run the workload on a golden
//     ("hardware") context and on the suspect context with launch capture
//     enabled, and find the first kernel whose output buffers differ.
//  3. Instruction bisection: instrument that kernel's PTX so that every
//     register-writing instruction also stores its (pc, value) to a
//     per-thread log in global memory, replay the captured launch on both
//     machines, and report the first differing log entry.
//
// The golden executor plays the role real GPU hardware plays in the
// paper; the suspect executor carries injected bugs (exec.BugSet).
package debug

import (
	"fmt"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// Workload replays an application against a context (e.g. the MNIST
// forward pass). It must be deterministic.
type Workload func(ctx *cudart.Context) error

// Report is the outcome of a full debug run.
type Report struct {
	// Step 1
	SuspiciousPaths []exec.CovKey
	// Step 2
	BadLaunch int    // launch id of the first incorrect kernel (-1 if none)
	BadAPI    string // the library call it belongs to
	BadKernel string
	// Step 3
	BadPC     int    // pc of the first incorrectly executing instruction
	BadInstr  string // its PTX text
	BadThread int    // thread that first diverged
	GoldenVal uint64
	BuggyVal  uint64
}

// Tool drives the three-step flow.
type Tool struct {
	Workload Workload
	// Regression is an optional known-good workload for differential
	// coverage (step 1); when nil, step 1 is skipped.
	Regression Workload
	Bugs       exec.BugSet
	// EntriesPerThread bounds the instruction log (default 4096).
	EntriesPerThread int
}

// Run executes the full flow and returns the report.
func (t *Tool) Run() (*Report, error) {
	rep := &Report{BadLaunch: -1, BadPC: -1}
	entries := t.EntriesPerThread
	if entries == 0 {
		entries = 4096
	}

	// ---- step 1: differential coverage ----
	if t.Regression != nil {
		regCtx := cudart.NewContext(t.Bugs)
		if err := t.Regression(regCtx); err != nil {
			return nil, fmt.Errorf("debug: regression workload: %w", err)
		}
		failCtx := cudart.NewContext(t.Bugs)
		if err := t.Workload(failCtx); err == nil {
			rep.SuspiciousPaths = failCtx.M.Coverage().Diff(regCtx.M.Coverage())
		}
	}

	// ---- step 2: run golden vs suspect with capture, bisect launches ----
	golden := cudart.NewContext(exec.BugSet{})
	golden.CaptureLaunches(true)
	if err := t.Workload(golden); err != nil {
		return nil, fmt.Errorf("debug: golden run failed (workload itself is broken?): %w", err)
	}
	suspect := cudart.NewContext(t.Bugs)
	suspect.CaptureLaunches(true)
	// A hard failure mid-run (e.g. a corrupted address) is itself a bug
	// manifestation; bisect with the partial capture.
	suspectErr := t.Workload(suspect)

	gl, sl := golden.CapturedLaunches(), suspect.CapturedLaunches()
	n := len(gl)
	if len(sl) < n {
		n = len(sl)
	}
	for i := 0; i < n; i++ {
		if gl[i].Kernel != sl[i].Kernel {
			return nil, fmt.Errorf("debug: launch sequences diverge at %d: %s vs %s",
				i, gl[i].Kernel, sl[i].Kernel)
		}
		if !buffersEqual(gl[i].BuffersAfter, sl[i].BuffersAfter) {
			rep.BadLaunch = i
			rep.BadAPI = gl[i].API
			rep.BadKernel = gl[i].Kernel
			break
		}
	}
	if rep.BadLaunch < 0 && suspectErr != nil && len(sl) > 0 {
		// No completed launch differed, but the suspect run died: the
		// launch it died in is the first incorrect one.
		i := len(sl) - 1
		rep.BadLaunch = i
		rep.BadAPI = sl[i].API
		rep.BadKernel = sl[i].Kernel
	}
	if rep.BadLaunch < 0 {
		if suspectErr != nil {
			return nil, fmt.Errorf("debug: suspect run failed with no captured launches: %w", suspectErr)
		}
		return rep, nil // no functional divergence found
	}

	// ---- step 3: instrument the first bad kernel and replay ----
	rec := sl[rep.BadLaunch]
	pc, raw, thread, gv, bv, err := t.bisectInstruction(rec, entries)
	if err != nil {
		return nil, fmt.Errorf("debug: instruction bisection: %w", err)
	}
	rep.BadPC = pc
	rep.BadInstr = raw
	rep.BadThread = thread
	rep.GoldenVal = gv
	rep.BuggyVal = bv
	return rep, nil
}

func buffersEqual(a, b map[uint64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for base, ab := range a {
		bb, ok := b[base]
		if !ok || len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if ab[i] != bb[i] {
				return false
			}
		}
	}
	return true
}
