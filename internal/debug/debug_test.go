package debug_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/debug"
	"repro/internal/exec"
	"repro/internal/ptx"
)

// convWorkload reproduces the paper's failing scenario: an FFT-algorithm
// cudnnConvolutionForward call (a multi-kernel library call).
func convWorkload(ctx *cudart.Context) error {
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	xd := cudnn.TensorDesc{N: 1, C: 2, H: 12, W: 12}
	fd := cudnn.FilterDesc{K: 3, C: 2, R: 5, S: 5}
	cd := cudnn.ConvDesc{Pad: 0, Stride: 1}
	x := make([]float32, xd.Count())
	for i := range x {
		x[i] = float32(i%17)*0.125 - 1
	}
	w := make([]float32, fd.Count())
	for i := range w {
		w[i] = float32(i%11)*0.25 - 1.25
	}
	px, err := ctx.Malloc(uint64(4 * len(x)))
	if err != nil {
		return err
	}
	ctx.MemcpyF32HtoD(px, x)
	pw, err := ctx.Malloc(uint64(4 * len(w)))
	if err != nil {
		return err
	}
	ctx.MemcpyF32HtoD(pw, w)
	py, err := ctx.Malloc(uint64(4 * 3 * 8 * 8))
	if err != nil {
		return err
	}
	_, err = h.ConvolutionForward(cudnn.FwdAlgoFFT, px, xd, pw, fd, cd, py)
	return err
}

// regressionWorkload is a known-good mini suite that does NOT execute
// rem, brev or tex — the differential-coverage baseline.
func regressionWorkload(ctx *cudart.Context) error {
	h, err := cudnn.Create(ctx)
	if err != nil {
		return err
	}
	px, err := ctx.Malloc(4 * 256)
	if err != nil {
		return err
	}
	py, err := ctx.Malloc(4 * 256)
	if err != nil {
		return err
	}
	if err := h.ActivationForward(px, py, 256); err != nil {
		return err
	}
	return h.Gemm(px, py, px, 8, 8, 8, 1, 0)
}

// TestDebugFindsRemBug is the paper's §III-D episode end to end: a faulty
// rem implementation is injected; the tool must (1) flag rem as a
// suspicious differential-coverage path, (2) bisect to the first kernel
// inside cudnnConvolutionForward whose outputs diverge, and (3) identify
// a rem instruction as the first incorrectly executing instruction.
func TestDebugFindsRemBug(t *testing.T) {
	tool := &debug.Tool{
		Workload:   convWorkload,
		Regression: regressionWorkload,
		Bugs:       exec.BugSet{BreakOp: ptx.OpRem},
	}
	rep, err := tool.Run()
	if err != nil {
		t.Fatalf("tool: %v", err)
	}
	// step 1: rem must be among the suspicious paths
	foundRem := false
	for _, k := range rep.SuspiciousPaths {
		if k.Op == ptx.OpRem {
			foundRem = true
		}
	}
	if !foundRem {
		t.Errorf("differential coverage did not flag rem; paths: %v", rep.SuspiciousPaths)
	}
	// step 2: the bad launch must be inside the convolution API call
	if rep.BadLaunch < 0 {
		t.Fatal("no bad launch found")
	}
	if rep.BadAPI != "cudnnConvolutionForward" {
		t.Errorf("bad API = %q, want cudnnConvolutionForward", rep.BadAPI)
	}
	// step 3: the first faulty instruction must be a rem
	if rep.BadPC < 0 {
		t.Fatal("no faulty instruction found")
	}
	if !strings.HasPrefix(rep.BadInstr, "rem") {
		t.Errorf("first faulty instruction = %q (kernel %s pc %d), want a rem",
			rep.BadInstr, rep.BadKernel, rep.BadPC)
	}
	if rep.GoldenVal == rep.BuggyVal {
		t.Error("reported divergent values are equal")
	}
	t.Logf("debug flow: API=%s launch=%d kernel=%s pc=%d instr=%q golden=%#x buggy=%#x",
		rep.BadAPI, rep.BadLaunch, rep.BadKernel, rep.BadPC, rep.BadInstr, rep.GoldenVal, rep.BuggyVal)
}

// TestDebugNoBugNoFinding: with no injected bug the tool reports nothing.
func TestDebugNoBugNoFinding(t *testing.T) {
	tool := &debug.Tool{Workload: convWorkload, Bugs: exec.BugSet{}}
	rep, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BadLaunch >= 0 {
		t.Fatalf("clean run flagged launch %d (%s)", rep.BadLaunch, rep.BadKernel)
	}
}

// TestDebugLocalisesArbitraryOpcodeBug is the property the methodology
// promises: for an arbitrary faulty opcode implementation, the tool finds
// a first-faulty instruction with exactly that opcode. The candidate set
// excludes the opcodes the instrumentation pass itself relies on
// (mov/mad/mul/add/setp/st/cvta): like the paper's tool, the logging code
// runs on the same buggy simulator, so a bug in those would corrupt the
// log bookkeeping itself.
func TestDebugLocalisesArbitraryOpcodeBug(t *testing.T) {
	ops := []ptx.Op{ptx.OpRem, ptx.OpDiv, ptx.OpBrev, ptx.OpShr, ptx.OpFma, ptx.OpSelp}
	f := func(pick uint8) bool {
		op := ops[int(pick)%len(ops)]
		tool := &debug.Tool{Workload: convWorkload, Bugs: exec.BugSet{BreakOp: op}}
		rep, err := tool.Run()
		if err != nil {
			t.Logf("op %v: %v", op, err)
			return false
		}
		if rep.BadLaunch < 0 || rep.BadPC < 0 {
			t.Logf("op %v: not localised: %+v", op, rep)
			return false
		}
		return strings.HasPrefix(rep.BadInstr, op.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestInstrumentedKernelRoundTrip verifies the instrumentation pass emits
// parseable PTX whose uninstrumented semantics are unchanged.
func TestInstrumentedKernelRoundTrip(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	h, err := cudnn.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	_, k, err := ctx.LookupKernel("fft2d_r2c_16x16")
	if err != nil {
		t.Fatal(err)
	}
	text := debug.InstrumentKernel(k, 64)
	m, err := ptx.Parse(text)
	if err != nil {
		t.Fatalf("instrumented PTX does not parse: %v", err)
	}
	ik := m.Kernels["fft2d_r2c_16x16"]
	if ik == nil {
		t.Fatal("instrumented kernel missing")
	}
	if len(ik.Instrs) <= len(k.Instrs) {
		t.Fatalf("instrumentation added no instructions: %d vs %d", len(ik.Instrs), len(k.Instrs))
	}
	if ik.ParamBytes() != k.ParamBytes()+8 {
		t.Fatalf("instrumented params = %d bytes, want %d", ik.ParamBytes(), k.ParamBytes()+8)
	}
}
