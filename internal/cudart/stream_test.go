package cudart_test

import (
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
)

// TestSyncMemcpyOccupiesTimeline checks that synchronous cudaMemcpy now
// occupies the copy engine and advances the default stream's ready time —
// the §III-B stream-overlap fix was previously a no-op for sync copies.
func TestSyncMemcpyOccupiesTimeline(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	const n = 1 << 20
	addr, err := ctx.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.ModelTime() != 0 {
		t.Fatalf("fresh context model time = %v, want 0", ctx.ModelTime())
	}
	ctx.MemcpyHtoD(addr, make([]byte, n))
	t1 := ctx.ModelTime()
	if t1 <= 0 {
		t.Fatal("synchronous H2D copy did not occupy the copy engine")
	}
	// a second copy serialises after the first: strictly increasing time
	ctx.MemcpyDtoH(make([]byte, n), addr)
	t2 := ctx.ModelTime()
	if t2 <= t1 {
		t.Fatalf("second copy did not extend the timeline: %v -> %v", t1, t2)
	}
	// device-to-device also rides the copy engine
	dst, err := ctx.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	ctx.MemcpyDtoD(dst, addr, n)
	if ctx.ModelTime() <= t2 {
		t.Fatal("DtoD copy did not extend the timeline")
	}
	// an async copy on another stream must start after the sync copies
	// released the copy engine, not overlap them
	s := ctx.StreamCreate()
	before := ctx.ModelTime()
	if err := ctx.MemcpyHtoDAsync(addr, make([]byte, n), s); err != nil {
		t.Fatal(err)
	}
	ctx.DeviceSynchronize()
	if ctx.ModelTime() <= before {
		t.Fatal("async copy after sync copies did not serialise on the copy engine")
	}
}
