// Package cudart is the CUDA-runtime analog the paper's workloads call
// into: device memory management, per-PTX-file module registration (the
// §III-A fix), kernel launches via both the runtime (cudaLaunch) and
// driver (cuLaunchKernel) APIs, streams and events including
// cudaStreamWaitEvent (§III-B), and the texture-binding APIs (§III-C).
//
// Execution is pluggable: the default Runner performs fast functional
// simulation; internal/timing provides the cycle-level performance model
// (the paper's "Performance simulation mode").
package cudart

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/ptx"
)

// KernelStats summarises one kernel execution.
type KernelStats struct {
	Name       string
	LaunchID   int
	GridDim    exec.Dim3
	BlockDim   exec.Dim3
	Cycles     uint64 // 0 in functional mode
	WarpInstrs uint64

	// Per-kernel memory-system counters, attributed by the timing
	// engine's partition shards (all 0 in functional mode): L2 outcomes,
	// DRAM demand traffic and row-buffer locality, and cycles this
	// kernel's segments spent stalled on partition ingress/port/MSHR
	// reservations.
	L2Accesses     uint64
	L2Hits         uint64
	L2Misses       uint64
	DRAMAccesses   uint64
	DRAMRowHits    uint64
	MemStallCycles uint64

	// Replayed marks a launch the timing engine retired from its hybrid
	// replay cache (Config.ReplayEnabled): Cycles and the memory counters
	// above are memoized from an earlier identical launch rather than
	// freshly simulated. Always false in functional and detailed modes.
	Replayed bool
}

// Runner executes a prepared grid. Functional and timing modes implement
// this interface.
type Runner interface {
	RunKernel(g *exec.Grid) (KernelStats, error)
}

// AsyncTicket is a handle to a kernel submitted to a StreamRunner; its
// statistics become available after the runner drains.
type AsyncTicket interface {
	// Stats returns the kernel's statistics once drained, or the
	// simulation error if the kernel failed.
	Stats() (KernelStats, error)
	// Done reports whether the operation has retired.
	Done() bool
}

// StreamRunner is the optional interface of runners that model
// concurrent multi-kernel stream execution (the detailed timing engine).
// When a context's runner implements it, launches and async copies on
// non-default streams are queued on the runner and simulated
// concurrently at the next synchronisation point; the context's coarse
// analytical timeline remains only as the fallback for purely
// functional runners.
type StreamRunner interface {
	Runner
	// SubmitKernel queues a launch on a stream without running it.
	SubmitKernel(g *exec.Grid, stream int) (AsyncTicket, error)
	// SubmitCopy queues an n-byte host-device transfer on a stream;
	// apply performs the functional memory effect when the modelled
	// transfer completes. The ticket's Stats().Cycles reports the
	// transfer's copy-engine occupancy.
	SubmitCopy(stream, bytes int, apply func()) AsyncTicket
	// DrainAll simulates until every queued operation has retired.
	DrainAll() error
	// ClockMHz reports the modelled core clock for cycle → µs
	// conversion on the context timeline.
	ClockMHz() float64
}

// FunctionalRunner runs grids in the fast functional mode (no timing).
type FunctionalRunner struct{}

// RunKernel implements Runner.
func (FunctionalRunner) RunKernel(g *exec.Grid) (KernelStats, error) {
	var before uint64
	m := g.Machine()
	before = m.Coverage().Total()
	if err := m.RunGrid(g); err != nil {
		return KernelStats{}, err
	}
	return KernelStats{
		Name: g.Kernel.Name, GridDim: g.GridDim, BlockDim: g.BlockDim,
		WarpInstrs: m.Coverage().Total() - before,
	}, nil
}

// LaunchRecord captures everything needed to replay a kernel launch in
// isolation — the data the paper's debug flow saves ("the data which is
// being copied to the GPU before a kernel is launched, along with the
// parameters passed into the kernel"), see Fig. 2.
type LaunchRecord struct {
	LaunchID int
	Module   *ptx.Module
	Kernel   string
	GridDim  exec.Dim3
	BlockDim exec.Dim3
	Shared   int
	Params   []byte
	// API is the high-level library call this launch belongs to (e.g.
	// "cudnnConvolutionForward"); the debug flow's first bisection level.
	API string
	// Buffers snapshots each live allocation reachable from a pointer-
	// sized parameter: base address -> contents at launch time.
	Buffers map[uint64][]byte
	// BuffersAfter snapshots the same allocations after the kernel ran.
	BuffersAfter map[uint64][]byte
	Stats        KernelStats
}

// Context is a CUDA context: memory, modules, streams, events, textures.
type Context struct {
	Mem   *device.Memory
	Alloc *device.Allocator
	Tex   *device.TextureRegistry
	M     *exec.Machine

	runner  Runner
	modules []*ptx.Module

	streams     map[Stream]*streamState
	events      map[Event]*eventState
	nextStream  Stream
	nextEvent   Event
	timeline    timeline
	launchCount int
	capture     bool
	apiTag      string
	captureLog  []*LaunchRecord
	kernelStats []KernelStats
	texRefs     map[string]*device.TexRef // host texref handles by symbol

	// async operations queued on a StreamRunner, awaiting a sync point
	pending  []pendingLaunch
	asyncErr error // sticky first failure of a drained batch
}

// pendingLaunch tracks one async operation: the runner's ticket plus,
// for kernels, the launch-ordered slot reserved in the kernel stats log
// (logIdx is -1 for copies, which have no log entry).
type pendingLaunch struct {
	ticket AsyncTicket
	logIdx int
	stream Stream
}

// NewContext creates a context with a fresh device and functional runner.
func NewContext(bugs exec.BugSet) *Context {
	mem := device.NewMemory()
	tex := device.NewTextureRegistry()
	c := &Context{
		Mem:     mem,
		Alloc:   device.NewAllocator(),
		Tex:     tex,
		M:       exec.NewMachine(exec.Config{Bugs: bugs}, mem, tex),
		runner:  FunctionalRunner{},
		streams: make(map[Stream]*streamState),
		events:  make(map[Event]*eventState),
		texRefs: make(map[string]*device.TexRef),
	}
	c.streams[DefaultStream] = &streamState{}
	return c
}

// SetRunner installs a Runner (e.g. the timing model). The paper's
// checkpoint flow switches a context from functional to performance mode.
func (c *Context) SetRunner(r Runner) { c.runner = r }

// Runner returns the active runner.
func (c *Context) Runner() Runner { return c.runner }

// RegisterModule parses one PTX translation unit and registers its
// kernels. Each embedded PTX file of a library must be registered with a
// separate call — GPGPU-Sim originally merged all PTX into one file and
// failed on cuDNN's duplicate symbol names (paper §III-A); keeping modules
// separate is the fix.
func (c *Context) RegisterModule(src string) (*ptx.Module, error) {
	m, err := ptx.Parse(src)
	if err != nil {
		return nil, err
	}
	c.modules = append(c.modules, m)
	for _, name := range m.Textures {
		if _, ok := c.texRefs[name]; !ok {
			ref := &device.TexRef{}
			c.Tex.RegisterTexture(name, ref)
			c.texRefs[name] = ref
		}
	}
	return m, nil
}

// Modules returns the registered modules in registration order.
func (c *Context) Modules() []*ptx.Module { return c.modules }

// LookupKernel finds a kernel by name, searching modules in registration
// order (first match wins; use cuLaunchKernel with an explicit module to
// disambiguate duplicates).
func (c *Context) LookupKernel(name string) (*ptx.Module, *ptx.Kernel, error) {
	for _, m := range c.modules {
		if k, ok := m.Kernels[name]; ok {
			return m, k, nil
		}
	}
	return nil, nil, fmt.Errorf("cudart: no kernel named %q in %d registered modules", name, len(c.modules))
}

// drainPending runs every queued async operation to completion on the
// StreamRunner and folds the per-kernel statistics into their reserved
// slots of the launch-ordered stats log. The first failure is returned
// and kept sticky (CUDA-style) for the next explicit synchronisation
// call. A no-op for functional runners and when nothing is pending.
func (c *Context) drainPending() error {
	sr, ok := c.runner.(StreamRunner)
	if !ok || len(c.pending) == 0 {
		return nil
	}
	err := sr.DrainAll()
	mhz := c.runnerClockMHz()
	t := &c.timeline
	for _, p := range c.pending {
		st, serr := p.ticket.Stats()
		if serr != nil {
			if err == nil {
				err = serr
			}
			continue
		}
		if p.logIdx >= 0 {
			entry := &c.kernelStats[p.logIdx]
			st.Name = entry.Name
			st.LaunchID = entry.LaunchID
			*entry = st
		}
		// Coarse µs timeline: each stream advances by its operations'
		// modelled durations — kernels and copies alike (cross-stream
		// overlap is already reflected in the cycle numbers the
		// detailed model produced).
		if ss, ok := c.streams[p.stream]; ok {
			start := maxF(ss.readyAt, t.now)
			ss.readyAt = start + float64(st.Cycles)/mhz
		}
	}
	c.pending = c.pending[:0]
	if err != nil && c.asyncErr == nil {
		c.asyncErr = err
	}
	return err
}

// Malloc allocates device memory (cudaMalloc).
func (c *Context) Malloc(size uint64) (uint64, error) {
	return c.Alloc.Alloc(size)
}

// Free releases device memory (cudaFree). Like the real call it is
// device-synchronizing: queued async kernels may still reference the
// allocation, so they drain first (any failure stays sticky for the
// next explicit synchronisation call).
func (c *Context) Free(addr uint64) error {
	_ = c.drainPending()
	return c.Alloc.Free(addr)
}

// syncCopy models a blocking memcpy on the legacy default stream, which
// is device-synchronizing: the copy starts only after every stream's
// outstanding work, then occupies the copy engine and the host.
func (c *Context) syncCopy(n int) {
	t := &c.timeline
	for _, ss := range c.streams {
		if ss.readyAt > t.now {
			t.now = ss.readyAt
		}
	}
	t.memcpy(c.streams[DefaultStream], n)
}

// MemcpyHtoD copies host bytes to device (cudaMemcpy HostToDevice). It
// is device-synchronizing: queued async work drains first; a deferred
// async failure stays sticky and surfaces at the next StreamSynchronize
// / DeviceSynchronize / AsyncError call.
func (c *Context) MemcpyHtoD(dst uint64, src []byte) {
	_ = c.drainPending()
	c.Mem.Write(dst, src)
	c.syncCopy(len(src))
}

// MemcpyDtoH copies device bytes to host. Like MemcpyHtoD it drains
// queued async work first; check StreamSynchronize / DeviceSynchronize /
// AsyncError for deferred failures before trusting the data.
func (c *Context) MemcpyDtoH(dst []byte, src uint64) {
	_ = c.drainPending()
	c.Mem.Read(src, dst)
	c.syncCopy(len(dst))
}

// runnerClockMHz reports the modelled core clock for cycle ↔ µs
// conversion on the coarse stream timeline: the runner's, when it
// implements StreamRunner and reports one, else DefaultClockMHz. Both
// the synchronous launch path and the async drain use this, so mixed
// timelines stay coherent.
func (c *Context) runnerClockMHz() float64 {
	if sr, ok := c.runner.(StreamRunner); ok {
		if m := sr.ClockMHz(); m > 0 {
			return m
		}
	}
	return DefaultClockMHz
}

// AsyncError returns (and consumes) the sticky error of a failed async
// batch, for callers that synchronised implicitly — through a
// synchronous memcpy, Memset or KernelStatsLog — rather than via
// StreamSynchronize/DeviceSynchronize, which report it directly.
func (c *Context) AsyncError() error {
	err := c.asyncErr
	c.asyncErr = nil
	return err
}

// MemcpyDtoD copies device to device.
func (c *Context) MemcpyDtoD(dst, src uint64, n int) {
	_ = c.drainPending()
	buf := make([]byte, n)
	c.Mem.Read(src, buf)
	c.Mem.Write(dst, buf)
	c.syncCopy(n)
}

// Memset fills n bytes at dst with value b (cudaMemset). Like the sync
// copies it is device-synchronizing, so queued async work drains first.
func (c *Context) Memset(dst uint64, b byte, n int) {
	_ = c.drainPending()
	buf := make([]byte, n)
	if b != 0 {
		for i := range buf {
			buf[i] = b
		}
	}
	c.Mem.Write(dst, buf)
}

// MemcpyF32HtoD writes a []float32 to the device.
func (c *Context) MemcpyF32HtoD(dst uint64, src []float32) {
	buf := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	c.MemcpyHtoD(dst, buf)
}

// MemcpyF32DtoH reads n float32 values from the device.
func (c *Context) MemcpyF32DtoH(src uint64, n int) []float32 {
	buf := make([]byte, 4*n)
	c.MemcpyDtoH(buf, src)
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// CaptureLaunches toggles launch capture for the debug tool.
func (c *Context) CaptureLaunches(on bool) { c.capture = on }

// SetAPITag labels subsequent launches with the high-level library call
// they implement; the cudnn layer sets this on every public entry point.
func (c *Context) SetAPITag(tag string) { c.apiTag = tag }

// CapturedLaunches returns the captured launch records.
func (c *Context) CapturedLaunches() []*LaunchRecord { return c.captureLog }

// KernelStatsLog returns per-kernel stats in launch order, draining any
// queued async launches first so every entry is final.
func (c *Context) KernelStatsLog() []KernelStats {
	_ = c.drainPending()
	return c.kernelStats
}

// ResetStats clears accumulated per-kernel statistics and captures.
func (c *Context) ResetStats() {
	_ = c.drainPending()
	c.kernelStats = nil
	c.captureLog = nil
	c.launchCount = 0
}
