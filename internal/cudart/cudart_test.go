package cudart_test

import (
	"testing"

	"repro/internal/cudart"
	"repro/internal/exec"
)

const incrPTX = `
.version 6.0
.target sm_61
.address_size 64
.visible .entry incr(.param .u64 pX, .param .u32 pN)
{
	.reg .pred %p<2>;
	.reg .f32 %f<3>;
	.reg .b32 %r<6>;
	.reg .b64 %rd<4>;
	ld.param.u64 %rd1, [pX];
	ld.param.u32 %r1, [pN];
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mov.u32 %r4, %tid.x;
	mad.lo.s32 %r5, %r2, %r3, %r4;
	setp.ge.u32 %p1, %r5, %r1;
	@%p1 bra DONE;
	cvta.to.global.u64 %rd1, %rd1;
	mul.wide.u32 %rd2, %r5, 4;
	add.s64 %rd3, %rd1, %rd2;
	ld.global.f32 %f1, [%rd3];
	add.f32 %f2, %f1, 0f3F800000;
	st.global.f32 [%rd3], %f2;
DONE:
	ret;
}
`

func TestStreamsAndEvents(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	if _, err := ctx.RegisterModule(incrPTX); err != nil {
		t.Fatal(err)
	}
	s1 := ctx.StreamCreate()
	s2 := ctx.StreamCreate()
	ev := ctx.EventCreate()

	n := 256
	buf := make([]byte, 4*n)
	px, err := ctx.Malloc(uint64(4 * n))
	if err != nil {
		t.Fatal(err)
	}
	// async copy on s1, record event, make s2 wait on it — the
	// cudaStreamWaitEvent pattern the paper added for cuDNN (§III-B).
	if err := ctx.MemcpyHtoDAsync(px, buf, s1); err != nil {
		t.Fatal(err)
	}
	if err := ctx.EventRecord(ev, s1); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StreamWaitEvent(s2, ev); err != nil {
		t.Fatal(err)
	}
	p := cudart.NewParams().Ptr(px).U32(uint32(n))
	if _, err := ctx.LaunchOnStream(s2, "incr", exec.Dim3{X: 2}, exec.Dim3{X: 128}, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StreamSynchronize(s2); err != nil {
		t.Fatal(err)
	}
	got := ctx.MemcpyF32DtoH(px, n)
	for i, v := range got {
		if v != 1 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
	// the model timeline must show the copy ordering: s2's kernel starts
	// no earlier than the event time
	if ctx.ModelTime() <= 0 {
		t.Fatal("model timeline did not advance")
	}
	// error paths
	if err := ctx.StreamWaitEvent(cudart.Stream(99), ev); err == nil {
		t.Fatal("expected invalid-stream error")
	}
	if err := ctx.EventRecord(cudart.Event(99), s1); err == nil {
		t.Fatal("expected invalid-event error")
	}
	ctx.StreamDestroy(s1)
	ctx.StreamDestroy(s2)
}

func TestEventElapsedAndOverlap(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	s := ctx.StreamCreate()
	start := ctx.EventCreate()
	end := ctx.EventCreate()
	if err := ctx.EventRecord(start, s); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<20)
	addr, _ := ctx.Malloc(1 << 20)
	if err := ctx.MemcpyHtoDAsync(addr, big, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.EventRecord(end, s); err != nil {
		t.Fatal(err)
	}
	dt, err := ctx.EventElapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatalf("elapsed = %v, want > 0", dt)
	}
	// two async copies on different streams serialise on the copy engine
	s2 := ctx.StreamCreate()
	before := ctx.ModelTime()
	if err := ctx.MemcpyHtoDAsync(addr, big, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.MemcpyHtoDAsync(addr, big, s2); err != nil {
		t.Fatal(err)
	}
	ctx.DeviceSynchronize()
	if ctx.ModelTime() <= before {
		t.Fatal("copy engine occupancy not modelled")
	}
}

func TestLaunchErrors(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	if _, err := ctx.RegisterModule(incrPTX); err != nil {
		t.Fatal(err)
	}
	// unknown kernel
	if _, err := ctx.Launch("nope", exec.Dim3{X: 1}, exec.Dim3{X: 32}, cudart.NewParams(), 0); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
	// short parameter buffer
	if _, err := ctx.Launch("incr", exec.Dim3{X: 1}, exec.Dim3{X: 32}, cudart.NewParams(), 0); err == nil {
		t.Fatal("expected parameter-size error")
	}
	// oversized block
	px, _ := ctx.Malloc(64)
	p := cudart.NewParams().Ptr(px).U32(4)
	if _, err := ctx.Launch("incr", exec.Dim3{X: 1}, exec.Dim3{X: 2048}, p, 0); err == nil {
		t.Fatal("expected block-size error")
	}
}

func TestMemoryAPIs(t *testing.T) {
	ctx := cudart.NewContext(exec.BugSet{})
	a, err := ctx.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float32{1, 2, 3, 4}
	ctx.MemcpyF32HtoD(a, vals)
	ctx.MemcpyDtoD(b, a, 16)
	got := ctx.MemcpyF32DtoH(b, 4)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("DtoD[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	ctx.Memset(b, 0, 16)
	got = ctx.MemcpyF32DtoH(b, 4)
	for i := range got {
		if got[i] != 0 {
			t.Fatalf("memset[%d] = %v", i, got[i])
		}
	}
	if err := ctx.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(a); err == nil {
		t.Fatal("double free not detected")
	}
}
