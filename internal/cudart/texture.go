package cudart

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/device"
)

// MallocArray allocates a cudaArray (cudaMallocArray analog).
func (c *Context) MallocArray(width, height, channels int) *device.CudaArray {
	return device.NewCudaArray(width, height, channels)
}

// MemcpyToArray fills a cudaArray from float32 host data.
func (c *Context) MemcpyToArray(arr *device.CudaArray, data []float32) error {
	if len(data) > len(arr.Data) {
		return fmt.Errorf("cudart: array copy overflow: %d > %d", len(data), len(arr.Data))
	}
	copy(arr.Data, data)
	return nil
}

// MemcpyToArrayFromDevice fills a cudaArray from device memory (f32).
// Like the other synchronous copies it is device-synchronizing: queued
// async stream work drains before the device memory is read.
func (c *Context) MemcpyToArrayFromDevice(arr *device.CudaArray, src uint64, n int) {
	_ = c.drainPending()
	buf := make([]byte, 4*n)
	c.Mem.Read(src, buf)
	for i := 0; i < n && i < len(arr.Data); i++ {
		arr.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
}

// RegisterTexture registers an additional texref under a texture name —
// __cudaRegisterTexture. MNIST registers multiple texrefs against the same
// name, which the pre-fix GPGPU-Sim map dropped (§III-C).
func (c *Context) RegisterTexture(name string) *device.TexRef {
	ref := &device.TexRef{}
	c.Tex.RegisterTexture(name, ref)
	if _, ok := c.texRefs[name]; !ok {
		c.texRefs[name] = ref
	}
	return ref
}

// TexRefByName returns the primary host texref handle for a module-level
// texture symbol.
func (c *Context) TexRefByName(name string) (*device.TexRef, error) {
	ref, ok := c.texRefs[name]
	if !ok {
		return nil, fmt.Errorf("cudart: unknown texture symbol %q", name)
	}
	return ref, nil
}

// BindTextureToArray binds an array to a texref (cudaBindTextureToArray).
// Rebinding implicitly unbinds the previous array first.
func (c *Context) BindTextureToArray(ref *device.TexRef, arr *device.CudaArray) error {
	return c.Tex.BindTextureToArray(ref, arr,
		device.TextureInfo{Format: "f32"},
		device.TextureReferenceAttr{AddressMode: "clamp", FilterMode: "point"})
}

// UnbindTexture removes a texref's array binding (cudaUnbindTexture).
func (c *Context) UnbindTexture(ref *device.TexRef) {
	c.Tex.UnbindTexture(ref)
}
