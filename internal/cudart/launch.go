package cudart

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/ptx"
)

// Params builds a kernel parameter buffer with CUDA alignment rules.
// cuDNN-style kernels take pointers (u64), sizes (u32/s32) and scalars
// (f32); Append* mirror the host-side argument marshalling.
type Params struct {
	buf []byte
}

// NewParams returns an empty parameter buffer builder.
func NewParams() *Params { return &Params{} }

func (p *Params) align(n int) {
	for len(p.buf)%n != 0 {
		p.buf = append(p.buf, 0)
	}
}

// Ptr appends a device pointer (u64).
func (p *Params) Ptr(addr uint64) *Params {
	p.align(8)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], addr)
	p.buf = append(p.buf, b[:]...)
	return p
}

// U32 appends a 32-bit unsigned scalar.
func (p *Params) U32(v uint32) *Params {
	p.align(4)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.buf = append(p.buf, b[:]...)
	return p
}

// I32 appends a 32-bit signed scalar.
func (p *Params) I32(v int32) *Params { return p.U32(uint32(v)) }

// F32 appends a float scalar.
func (p *Params) F32(v float32) *Params { return p.U32(math.Float32bits(v)) }

// Bytes returns the marshalled buffer.
func (p *Params) Bytes() []byte { return p.buf }

// Launch launches a kernel by name through the runtime-API path
// (cudaLaunch). Grid and block dimensions follow CUDA's <<<grid, block>>>.
func (c *Context) Launch(name string, grid, block exec.Dim3, params *Params, sharedBytes int) (KernelStats, error) {
	return c.LaunchOnStream(DefaultStream, name, grid, block, params, sharedBytes)
}

// LaunchOnStream launches a kernel on a specific stream.
//
// With a StreamRunner installed (performance mode), a launch on a
// non-default stream is asynchronous: it queues in the detailed model
// and executes concurrently with work on other streams at the next
// synchronisation point. The returned KernelStats then carries only the
// launch identity (zero cycles); final numbers appear in KernelStatsLog
// after a sync. Default-stream launches keep the legacy
// device-synchronizing semantics and run to completion immediately.
func (c *Context) LaunchOnStream(s Stream, name string, grid, block exec.Dim3, params *Params, sharedBytes int) (KernelStats, error) {
	mod, k, err := c.LookupKernel(name)
	if err != nil {
		return KernelStats{}, err
	}
	return c.launch(s, mod, k, grid, block, params.Bytes(), sharedBytes)
}

// CuLaunchKernel is the driver-API launch path the paper added for its
// debugging tool (§III-B): it takes an explicit module handle, so kernels
// with duplicate names across PTX files can be launched unambiguously,
// and a raw parameter buffer, as when replaying captured launches.
func (c *Context) CuLaunchKernel(mod *ptx.Module, name string, grid, block exec.Dim3, rawParams []byte, sharedBytes int) (KernelStats, error) {
	k, ok := mod.Kernels[name]
	if !ok {
		return KernelStats{}, fmt.Errorf("cudart: module has no kernel %q", name)
	}
	return c.launch(DefaultStream, mod, k, grid, block, rawParams, sharedBytes)
}

func (c *Context) launch(s Stream, mod *ptx.Module, k *ptx.Kernel, grid, block exec.Dim3, rawParams []byte, sharedBytes int) (KernelStats, error) {
	ss, ok := c.streams[s]
	if !ok {
		return KernelStats{}, errBadStream(s)
	}
	g, err := c.M.NewGrid(k, grid, block, rawParams, sharedBytes)
	if err != nil {
		return KernelStats{}, err
	}

	// Concurrent-stream path: queue the launch in the detailed model and
	// reserve its slot in the launch-ordered stats log. Launch capture
	// needs before/after buffer snapshots, so it forces the sync path.
	if sr, async := c.runner.(StreamRunner); async && s != DefaultStream && !c.capture {
		tk, err := sr.SubmitKernel(g, int(s))
		if err != nil {
			return KernelStats{}, err
		}
		id := c.launchCount
		c.launchCount++
		ph := KernelStats{Name: k.Name, LaunchID: id, GridDim: grid, BlockDim: block}
		c.kernelStats = append(c.kernelStats, ph)
		c.pending = append(c.pending, pendingLaunch{ticket: tk, logIdx: len(c.kernelStats) - 1, stream: s})
		return ph, nil
	}

	// Synchronous path: the legacy default stream is device-synchronizing,
	// so any queued async work completes first.
	if err := c.drainPending(); err != nil {
		return KernelStats{}, err
	}
	id := c.launchCount
	c.launchCount++

	var rec *LaunchRecord
	if c.capture {
		rec = c.captureLaunch(id, mod, k, grid, block, rawParams, sharedBytes)
	}

	stats, err := c.runner.RunKernel(g)
	if rec != nil {
		// Snapshot the same buffers after execution so the debug tool can
		// bisect the first incorrectly-executing kernel (paper Fig. 2).
		rec.BuffersAfter = make(map[uint64][]byte, len(rec.Buffers))
		for base, before := range rec.Buffers {
			buf := make([]byte, len(before))
			c.Mem.Read(base, buf)
			rec.BuffersAfter[base] = buf
		}
	}
	if err != nil {
		return stats, fmt.Errorf("cudart: kernel %s (launch %d): %w", k.Name, id, err)
	}
	stats.Name = k.Name
	stats.LaunchID = id
	stats.GridDim = grid
	stats.BlockDim = block
	c.kernelStats = append(c.kernelStats, stats)
	if rec != nil {
		rec.Stats = stats
	}

	// Timeline: the kernel occupies the stream for its modelled duration
	// (Cycles is 0 in functional mode, so this is a no-op there).
	t := &c.timeline
	start := maxF(ss.readyAt, t.now)
	ss.readyAt = start + float64(stats.Cycles)/c.runnerClockMHz()
	return stats, nil
}

// captureLaunch snapshots the launch inputs: parameter bytes plus the
// contents of every allocation reachable from a pointer-sized parameter
// (Fig. 2's "capture and save all relevant data").
func (c *Context) captureLaunch(id int, mod *ptx.Module, k *ptx.Kernel, grid, block exec.Dim3, rawParams []byte, shared int) *LaunchRecord {
	rec := &LaunchRecord{
		LaunchID: id, Module: mod, Kernel: k.Name, API: c.apiTag,
		GridDim: grid, BlockDim: block, Shared: shared,
		Params:  append([]byte(nil), rawParams...),
		Buffers: make(map[uint64][]byte),
	}
	for _, p := range k.Params {
		if p.Type != ptx.U64 && p.Type != ptx.B64 && p.Type != ptx.S64 {
			continue // only pointer-sized params may point at buffers
		}
		if p.Offset+8 > len(rawParams) {
			continue
		}
		addr := binary.LittleEndian.Uint64(rawParams[p.Offset:])
		base, size, ok := c.Alloc.SizeOf(addr)
		if !ok {
			continue
		}
		if _, done := rec.Buffers[base]; done {
			continue
		}
		buf := make([]byte, size)
		c.Mem.Read(base, buf)
		rec.Buffers[base] = buf
	}
	c.captureLog = append(c.captureLog, rec)
	return rec
}
