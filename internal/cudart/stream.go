package cudart

// Stream is a CUDA stream handle. Streams let cuDNN overlap host-device
// copies with kernel execution; the paper found GPGPU-Sim's stream support
// incomplete (missing cudaStreamWaitEvent) and completed it (§III-B).
type Stream int

// DefaultStream is stream 0.
const DefaultStream Stream = 0

// Event is a CUDA event handle.
type Event int

type streamState struct {
	readyAt float64 // model time (µs) when the stream's last op finishes
}

type eventState struct {
	recordedAt float64
	recorded   bool
}

// timeline models overlap between streams and the copy engine. Functional
// effects always happen in call order (which is legal for any correctly
// synchronised program); the timeline computes what the concurrent
// schedule would have been, so stream overlap is still observable.
type timeline struct {
	copyEngineAt float64
	now          float64 // host-side issue clock
	copyBWBytes  float64 // bytes per µs
}

// DefaultCopyBWBytesPerUs is the fallback copy-engine bandwidth
// (~12 GB/s, PCIe 3.0 x16) in bytes per microsecond — shared by the
// analytical timeline here and the detailed model's copy engine so the
// two stay consistent.
const DefaultCopyBWBytesPerUs = 12e3

// DefaultClockMHz is the fallback core clock for cycle ↔ µs conversion
// when the runner does not report one.
const DefaultClockMHz = 1400

func (t *timeline) bw() float64 {
	if t.copyBWBytes == 0 {
		return DefaultCopyBWBytesPerUs
	}
	return t.copyBWBytes
}

// occupy books an n-byte transfer on the copy engine for a stream: the
// transfer waits for the stream's prior work and the copy engine, then
// occupies both for its duration. It returns the completion time. This is
// the §III-B stream-overlap model: back-to-back copies serialise on the
// copy engine while kernels on other streams keep running.
func (t *timeline) occupy(ss *streamState, n int) float64 {
	start := maxF(ss.readyAt, t.copyEngineAt, t.now)
	end := start + float64(n)/t.bw()
	ss.readyAt = end
	t.copyEngineAt = end
	return end
}

// memcpy models a synchronous cudaMemcpy: like the async variant it rides
// the copy engine, but it also blocks the host, so the host-side issue
// clock advances past the completion.
func (t *timeline) memcpy(ss *streamState, n int) {
	t.now = t.occupy(ss, n)
}

// StreamCreate returns a new stream.
func (c *Context) StreamCreate() Stream {
	c.nextStream++
	s := c.nextStream
	c.streams[s] = &streamState{}
	return s
}

// StreamDestroy removes a stream (draining its queued work first, like
// cudaStreamDestroy on a stream with outstanding operations).
func (c *Context) StreamDestroy(s Stream) {
	if s != DefaultStream {
		_ = c.drainPending()
		delete(c.streams, s)
	}
}

// EventCreate returns a new event.
func (c *Context) EventCreate() Event {
	c.nextEvent++
	e := c.nextEvent
	c.events[e] = &eventState{}
	return e
}

// EventRecord records the event at the stream's current ready time
// (draining queued async work first so the time includes it).
func (c *Context) EventRecord(e Event, s Stream) error {
	if err := c.drainPending(); err != nil {
		return err
	}
	es, ok := c.events[e]
	if !ok {
		return errBadEvent(e)
	}
	ss, ok := c.streams[s]
	if !ok {
		return errBadStream(s)
	}
	es.recordedAt = ss.readyAt
	es.recorded = true
	return nil
}

// StreamWaitEvent makes all later work in the stream wait for the event —
// the API call the paper added to GPGPU-Sim for cuDNN (§III-B).
func (c *Context) StreamWaitEvent(s Stream, e Event) error {
	ss, ok := c.streams[s]
	if !ok {
		return errBadStream(s)
	}
	es, ok := c.events[e]
	if !ok {
		return errBadEvent(e)
	}
	if es.recorded && es.recordedAt > ss.readyAt {
		ss.readyAt = es.recordedAt
	}
	return nil
}

// StreamSynchronize blocks until a stream's work completes: queued async
// operations drain through the detailed model (when one is installed)
// and the host clock advances. Errors from drained kernels surface here.
func (c *Context) StreamSynchronize(s Stream) error {
	derr := c.drainPending()
	ss, ok := c.streams[s]
	if !ok {
		return errBadStream(s)
	}
	if ss.readyAt > c.timeline.now {
		c.timeline.now = ss.readyAt
	}
	// reporting the failure (from this drain, or stored by an earlier
	// implicit one) consumes the sticky error
	if derr == nil {
		derr = c.asyncErr
	}
	c.asyncErr = nil
	return derr
}

// DeviceSynchronize waits for all streams. Errors from drained async
// kernels surface here (CUDA-style sticky error reporting: returning
// the failure consumes it).
func (c *Context) DeviceSynchronize() error {
	derr := c.drainPending()
	for _, ss := range c.streams {
		if ss.readyAt > c.timeline.now {
			c.timeline.now = ss.readyAt
		}
	}
	if derr == nil {
		derr = c.asyncErr
	}
	c.asyncErr = nil
	return derr
}

// EventElapsed returns the modelled time between two recorded events in
// microseconds.
func (c *Context) EventElapsed(start, end Event) (float64, error) {
	a, ok := c.events[start]
	if !ok {
		return 0, errBadEvent(start)
	}
	b, ok := c.events[end]
	if !ok {
		return 0, errBadEvent(end)
	}
	if !a.recorded || !b.recorded {
		return 0, errNotRecorded
	}
	return b.recordedAt - a.recordedAt, nil
}

// MemcpyHtoDAsync is an asynchronous host-to-device copy on a stream.
//
// With a StreamRunner installed (performance mode) and a non-default
// stream, the copy is queued into the detailed model: it orders against
// kernels on its stream, serialises on the modelled copy engine, and its
// functional memory effect happens when the modelled transfer completes
// — so copy/kernel overlap shows up in cycle numbers, not just on the
// coarse µs timeline. Otherwise (functional runner, or the legacy
// device-synchronizing default stream), the copy happens immediately and
// only occupies the analytical timeline, as before.
func (c *Context) MemcpyHtoDAsync(dst uint64, src []byte, s Stream) error {
	ss, ok := c.streams[s]
	if !ok {
		return errBadStream(s)
	}
	if sr, async := c.runner.(StreamRunner); async && s != DefaultStream {
		// The host buffer may be reused before the drain: snapshot it,
		// matching cudaMemcpyAsync's pageable-memory staging behaviour.
		staged := append([]byte(nil), src...)
		tk := sr.SubmitCopy(int(s), len(src), func() { c.Mem.Write(dst, staged) })
		c.pending = append(c.pending, pendingLaunch{ticket: tk, logIdx: -1, stream: s})
		return nil
	}
	_ = c.drainPending()
	c.Mem.Write(dst, src)
	c.timeline.occupy(ss, len(src))
	return nil
}

// MemcpyDtoHAsync is the device-to-host analog of MemcpyHtoDAsync. The
// host buffer is only valid after the stream synchronises.
func (c *Context) MemcpyDtoHAsync(dst []byte, src uint64, s Stream) error {
	_, ok := c.streams[s]
	if !ok {
		return errBadStream(s)
	}
	if sr, async := c.runner.(StreamRunner); async && s != DefaultStream {
		tk := sr.SubmitCopy(int(s), len(dst), func() { c.Mem.Read(src, dst) })
		c.pending = append(c.pending, pendingLaunch{ticket: tk, logIdx: -1, stream: s})
		return nil
	}
	_ = c.drainPending()
	ss := c.streams[s]
	c.Mem.Read(src, dst)
	c.timeline.occupy(ss, len(dst))
	return nil
}

// ModelTime returns the current modelled elapsed time (µs) assuming all
// streams have been synchronised (queued async work drains first).
func (c *Context) ModelTime() float64 {
	_ = c.drainPending()
	t := c.timeline.now
	for _, ss := range c.streams {
		if ss.readyAt > t {
			t = ss.readyAt
		}
	}
	return t
}

func maxF(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

type errBadStream Stream

func (e errBadStream) Error() string { return "cudart: invalid stream handle" }

type errBadEvent Event

func (e errBadEvent) Error() string { return "cudart: invalid event handle" }

var errNotRecorded = errString("cudart: event not recorded")

type errString string

func (e errString) Error() string { return string(e) }
