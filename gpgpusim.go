// Package gpgpusim is the public API of this reproduction of "Analyzing
// Machine Learning Workloads Using a Detailed GPU Simulator" (Lew et al.,
// ISPASS 2019): a GPGPU-Sim-style PTX simulator able to run cuDNN-style
// deep-learning workloads, together with the paper's correlation, power
// and AerialVision case-study experiments.
//
// The heavy lifting lives in internal packages; this package re-exports
// the surfaces a downstream user needs:
//
//   - NewContext / Context: a CUDA-runtime context over the simulated GPU
//     (functional mode by default).
//   - CreateCuDNN: the cuDNN-analog library handle (registers the PTX
//     kernel corpus: GEMM, implicit GEMM, FFT, FFT-tiling, Winograd
//     fused/non-fused, LRN, pooling, softmax, ...).
//   - NewTimingEngine + UseTiming: switch a context into the cycle-level
//     Performance simulation mode (GTX 1050 / GTX 1080 Ti models).
//   - NewDevice / LeNet / dataset helpers: the PyTorch-analog framework
//     and the MNIST workload.
//   - RunMNISTCorrelation / RunConvSample: the paper's experiments.
//   - DebugTool: the §III-D functional-debug methodology.
//   - CheckpointCapture / CheckpointResume: the §III-F flow.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package gpgpusim

import (
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cudart"
	"repro/internal/cudnn"
	"repro/internal/debug"
	"repro/internal/exec"
	"repro/internal/mnist"
	"repro/internal/timing"
	"repro/internal/torch"
)

// Core simulator types.
type (
	// Context is a CUDA-runtime context over the simulated GPU.
	Context = cudart.Context
	// Params marshals kernel launch arguments.
	Params = cudart.Params
	// KernelStats summarises one kernel execution.
	KernelStats = cudart.KernelStats
	// Stream is a CUDA stream handle. In Performance mode, launches and
	// async copies on distinct non-default streams execute concurrently
	// inside the detailed timing model (multi-grid dispatch).
	Stream = cudart.Stream
	// Event is a CUDA event handle.
	Event = cudart.Event
	// KernelTicket is a handle to a kernel submitted to the timing
	// engine's concurrent queue via TimingEngine.Submit; stats become
	// available after TimingEngine.Drain.
	KernelTicket = timing.Ticket
	// Dim3 is a CUDA dim3.
	Dim3 = exec.Dim3
	// BugSet selects injected functional bugs (zero value = correct).
	BugSet = exec.BugSet
	// TimingConfig describes a modelled GPU.
	TimingConfig = timing.Config
	// TimingEngine is the cycle-level performance model.
	TimingEngine = timing.Engine
	// CuDNN is the cuDNN-analog library handle.
	CuDNN = cudnn.Handle
	// Device is the PyTorch-analog device.
	Device = torch.Device
	// LeNet is the MNIST workload model.
	LeNet = mnist.LeNet
	// DebugTool drives the §III-D functional-debug flow.
	DebugTool = debug.Tool
	// DebugReport is the debug flow's finding.
	DebugReport = debug.Report
	// CheckpointPoint selects where to checkpoint (§III-F).
	CheckpointPoint = checkpoint.Point
	// CheckpointState is captured Data1+Data2.
	CheckpointState = checkpoint.State
	// GPU selects a modelled card for the experiments.
	GPU = core.GPU
)

// GPU presets.
const (
	GTX1050   = core.GTX1050
	GTX1080Ti = core.GTX1080Ti
)

// DefaultStream is the legacy device-synchronizing stream 0.
const DefaultStream = cudart.DefaultStream

// NewContext creates a functional-mode simulator context.
func NewContext(bugs BugSet) *Context { return cudart.NewContext(bugs) }

// NewParams returns a kernel argument builder.
func NewParams() *Params { return cudart.NewParams() }

// CreateCuDNN registers the kernel library on a context and returns the
// cuDNN-analog handle.
func CreateCuDNN(ctx *Context) (*CuDNN, error) { return cudnn.Create(ctx) }

// SimOption configures a timing engine built through this facade.
type SimOption = timing.Option

// WithWorkers makes the timing engine step SM cores concurrently on n
// host goroutines (0 selects runtime.NumCPU()). The simulation stays
// deterministic: any worker count reports identical cycle counts and
// per-kernel statistics.
func WithWorkers(n int) SimOption { return timing.WithWorkers(n) }

// NewTimingEngine builds a cycle-level engine for a GPU preset.
func NewTimingEngine(gpu GPU, opts ...SimOption) (*TimingEngine, error) {
	cfg, err := gpu.TimingConfig()
	if err != nil {
		return nil, err
	}
	return timing.New(cfg, opts...)
}

// UseTiming switches a context into Performance simulation mode. The
// installed runner also models concurrent multi-kernel stream execution:
// Context.LaunchOnStream and the async memcpys queue on non-default
// streams and overlap in the detailed model until the next
// synchronisation point (StreamSynchronize / DeviceSynchronize / any
// synchronous copy).
func UseTiming(ctx *Context, e *TimingEngine) { ctx.SetRunner(timing.Runner{E: e}) }

// NewDevice creates a PyTorch-analog device over a fresh simulated GPU.
func NewDevice(bugs BugSet) (*Device, error) { return torch.NewDevice(bugs) }

// Transformer-inference workload surfaces.
type (
	// TransformerConfig sizes the transformer encoder workload.
	TransformerConfig = torch.TransformerConfig
	// TransformerEncoder is the transformer-inference workload model; its
	// ForwardBatch overlaps per-sequence forward passes on CUDA streams.
	TransformerEncoder = torch.TransformerEncoder
)

// NewTransformerEncoder builds the transformer-inference encoder on a
// device with deterministically seeded weights.
func NewTransformerEncoder(dev *Device, seed int64, cfg TransformerConfig) (*TransformerEncoder, error) {
	return torch.NewTransformerEncoder(dev, rand.New(rand.NewSource(seed)), cfg)
}

// NewLeNet builds the MNIST workload on a fresh functional device.
func NewLeNet(bugs BugSet) (*LeNet, *Device, error) { return mnist.NewDefaultLeNet(bugs) }

// NewMNISTDataset builds the deterministic synthetic MNIST-like dataset.
func NewMNISTDataset(seed int64) *mnist.Dataset { return mnist.NewDataset(seed) }

// RunMNISTCorrelation reproduces the paper's §IV (Figs. 6-8).
func RunMNISTCorrelation(images int) (*core.MNISTCorrelationResult, error) {
	return core.RunMNISTCorrelation(images)
}

// RunConvSample reproduces one case of the paper's §V sweep (Figs. 9-25).
func RunConvSample(gpu GPU, dir core.ConvDirection, algo string, shape core.ConvSampleShape) (*core.ConvSampleResult, error) {
	return core.RunConvSample(gpu, dir, algo, shape)
}
